"""Numerical gradient checks for the differentiable operations.

Every structured operation used by the DDNN (convolution, pooling, batch
norm via its primitives, softmax cross-entropy, the aggregators) is verified
against central finite differences.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import Tensor
from repro.nn.layers import BatchNorm1d, BatchNorm2d, Linear
from repro.nn.losses import softmax_cross_entropy


def numerical_gradient(tensor: Tensor, scalar_fn, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``scalar_fn`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    iterator = np.nditer(tensor.data, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        upper = scalar_fn()
        tensor.data[index] = original - eps
        lower = scalar_fn()
        tensor.data[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad


def assert_gradients_match(tensor: Tensor, scalar_fn, atol: float = 1e-5) -> None:
    expected = numerical_gradient(tensor, scalar_fn)
    np.testing.assert_allclose(tensor.grad, expected, atol=atol)


@pytest.fixture()
def generator():
    return np.random.default_rng(2024)


class TestConvolutionGradients:
    def test_conv2d_weight_bias_input(self, generator):
        x = Tensor(generator.standard_normal((2, 3, 6, 6)), requires_grad=True)
        w = Tensor(generator.standard_normal((4, 3, 3, 3)), requires_grad=True)
        b = Tensor(generator.standard_normal(4), requires_grad=True)

        def loss_value() -> float:
            return float((F.conv2d(x, w, b, stride=1, padding=1).data ** 2).sum())

        out = F.conv2d(x, w, b, stride=1, padding=1)
        (out * out).sum().backward()
        assert_gradients_match(w, loss_value)
        assert_gradients_match(b, loss_value)
        assert_gradients_match(x, loss_value)

    def test_conv2d_stride_two_no_padding(self, generator):
        x = Tensor(generator.standard_normal((1, 2, 8, 8)), requires_grad=True)
        w = Tensor(generator.standard_normal((3, 2, 3, 3)), requires_grad=True)

        def loss_value() -> float:
            return float(F.conv2d(x, w, stride=2, padding=0).data.sum())

        F.conv2d(x, w, stride=2, padding=0).sum().backward()
        assert_gradients_match(w, loss_value)
        assert_gradients_match(x, loss_value)


class TestPoolingGradients:
    def test_max_pool_gradient(self, generator):
        x = Tensor(generator.standard_normal((2, 2, 6, 6)), requires_grad=True)
        scale = generator.standard_normal((2, 2, 3, 3))

        def loss_value() -> float:
            return float((F.max_pool2d(x, 3, stride=2, padding=1).data * scale).sum())

        (F.max_pool2d(x, 3, stride=2, padding=1) * Tensor(scale)).sum().backward()
        assert_gradients_match(x, loss_value)

    def test_avg_pool_gradient(self, generator):
        x = Tensor(generator.standard_normal((2, 3, 6, 6)), requires_grad=True)

        def loss_value() -> float:
            return float((F.avg_pool2d(x, 2, stride=2).data ** 2).sum())

        out = F.avg_pool2d(x, 2, stride=2)
        (out * out).sum().backward()
        assert_gradients_match(x, loss_value)


class TestClassificationGradients:
    def test_softmax_cross_entropy_gradient(self, generator):
        logits = Tensor(generator.standard_normal((5, 4)), requires_grad=True)
        targets = generator.integers(0, 4, size=5)

        def loss_value() -> float:
            return float(F.softmax_cross_entropy(Tensor(logits.data), targets).data)

        F.softmax_cross_entropy(logits, targets).backward()
        assert_gradients_match(logits, loss_value)

    def test_cross_entropy_gradient_matches_softmax_minus_onehot(self, generator):
        logits = Tensor(generator.standard_normal((3, 3)), requires_grad=True)
        targets = np.array([0, 2, 1])
        softmax_cross_entropy(logits, targets).backward()
        probabilities = F.softmax(Tensor(logits.data)).data
        one_hot = np.eye(3)[targets]
        np.testing.assert_allclose(logits.grad, (probabilities - one_hot) / 3, atol=1e-8)

    def test_log_softmax_gradient(self, generator):
        logits = Tensor(generator.standard_normal((4, 5)), requires_grad=True)
        weights = generator.standard_normal((4, 5))

        def loss_value() -> float:
            return float((F.log_softmax(Tensor(logits.data)).data * weights).sum())

        (F.log_softmax(logits) * Tensor(weights)).sum().backward()
        assert_gradients_match(logits, loss_value)


class TestLayerGradients:
    def test_linear_gradient(self, generator):
        layer = Linear(4, 3, rng=generator)
        x = Tensor(generator.standard_normal((5, 4)), requires_grad=True)

        def loss_value() -> float:
            return float((layer(Tensor(x.data)).data ** 2).sum())

        out = layer(x)
        (out * out).sum().backward()
        assert_gradients_match(x, loss_value)
        assert_gradients_match(layer.weight, loss_value)
        assert_gradients_match(layer.bias, loss_value)

    def test_batchnorm1d_gradient(self, generator):
        layer = BatchNorm1d(4)
        layer.train()
        x = Tensor(generator.standard_normal((6, 4)), requires_grad=True)

        def loss_value() -> float:
            fresh = BatchNorm1d(4)
            fresh.gamma.data = layer.gamma.data.copy()
            fresh.beta.data = layer.beta.data.copy()
            return float((fresh(Tensor(x.data)).data ** 2).sum())

        out = layer(x)
        (out * out).sum().backward()
        assert_gradients_match(x, loss_value, atol=1e-4)

    def test_batchnorm2d_gamma_beta_gradient(self, generator):
        layer = BatchNorm2d(3)
        x_data = generator.standard_normal((4, 3, 5, 5))

        def loss_value() -> float:
            fresh = BatchNorm2d(3)
            fresh.gamma.data = layer.gamma.data.copy()
            fresh.beta.data = layer.beta.data.copy()
            return float((fresh(Tensor(x_data)).data ** 2).sum())

        out = layer(Tensor(x_data))
        (out * out).sum().backward()
        assert_gradients_match(layer.gamma, loss_value, atol=1e-4)
        assert_gradients_match(layer.beta, loss_value, atol=1e-4)


class TestElementwiseGradChecks:
    @pytest.mark.parametrize(
        "operation",
        [
            lambda t: (t.exp()).sum(),
            lambda t: ((t + 3.0).log()).sum(),
            lambda t: (t.sigmoid()).sum(),
            lambda t: (t.tanh()).sum(),
            lambda t: (t ** 2).mean(),
            lambda t: (t.relu()).sum(),
        ],
    )
    def test_unary_operations(self, generator, operation):
        x = Tensor(generator.uniform(0.1, 2.0, size=(3, 4)), requires_grad=True)

        def loss_value() -> float:
            return float(operation(Tensor(x.data)).data)

        operation(x).backward()
        assert_gradients_match(x, loss_value)
