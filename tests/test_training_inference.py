"""Integration-level tests for joint training, staged inference and accuracy measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DDNNTrainer,
    StagedInferenceEngine,
    TrainingConfig,
    build_ddnn,
    evaluate_exit_accuracies,
    evaluate_overall,
    full_accuracy_report,
    search_threshold,
    staged_inference,
    threshold_for_exit_rate,
    train_ddnn,
)
from repro.nn import load_module, save_module


class TestDDNNTrainer:
    def test_training_reduces_joint_loss(self, tiny_config, tiny_train):
        model = build_ddnn(tiny_config)
        trainer = DDNNTrainer(model, TrainingConfig(epochs=5, batch_size=32, seed=0))
        history = trainer.fit(tiny_train)
        losses = history.losses()
        assert len(losses) == 5
        assert losses[-1] < losses[0]
        assert history.final_loss == losses[-1]

    def test_epoch_stats_record_exit_accuracy(self, tiny_config, tiny_train):
        model = build_ddnn(tiny_config)
        trainer = DDNNTrainer(model, TrainingConfig(epochs=1, batch_size=32))
        stats = trainer.train_epoch(tiny_train)
        assert set(stats.exit_accuracy) == {"local", "cloud"}
        assert all(0.0 <= value <= 1.0 for value in stats.exit_accuracy.values())

    def test_exit_weights_affect_training(self, tiny_config, tiny_train):
        local_only = build_ddnn(tiny_config)
        trainer = DDNNTrainer(
            local_only,
            TrainingConfig(epochs=3, batch_size=32, exit_weights=(1.0, 0.0), seed=0),
        )
        trainer.fit(tiny_train)
        accuracies = trainer.evaluate_exits(tiny_train)
        # With a zero cloud weight the cloud exit stays near chance while the
        # local exit learns.
        assert accuracies["local"] > accuracies["cloud"] - 0.05

    def test_train_ddnn_helper(self, tiny_config, tiny_train):
        model = build_ddnn(tiny_config)
        trainer = train_ddnn(model, tiny_train, TrainingConfig(epochs=1, batch_size=32))
        assert len(trainer.history.epochs) == 1

    def test_empty_history_raises(self, tiny_config):
        trainer = DDNNTrainer(build_ddnn(tiny_config), TrainingConfig(epochs=1))
        with pytest.raises(ValueError):
            _ = trainer.history.final_loss

    def test_trained_model_beats_chance(self, trained_ddnn, tiny_test):
        accuracies = evaluate_exit_accuracies(trained_ddnn, tiny_test)
        assert accuracies["cloud"] > 1.0 / 3.0
        assert accuracies["local"] > 1.0 / 3.0


class TestStagedInference:
    def test_threshold_one_exits_everything_locally(self, trained_ddnn, tiny_test):
        result = staged_inference(trained_ddnn, tiny_test, thresholds=1.0)
        assert result.local_exit_fraction == 1.0
        assert set(result.exit_indices.tolist()) == {0}

    def test_threshold_zero_sends_everything_to_cloud(self, trained_ddnn, tiny_test):
        result = staged_inference(trained_ddnn, tiny_test, thresholds=0.0)
        assert result.local_exit_fraction == 0.0
        np.testing.assert_array_equal(
            result.predictions, result.exit_predictions["cloud"]
        )

    def test_intermediate_threshold_splits_samples(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        result = engine.run(tiny_test)
        assert 0.0 <= result.local_exit_fraction <= 1.0
        assert result.exit_fraction("local") + result.exit_fraction("cloud") == pytest.approx(1.0)
        # Predictions come from the exit each sample was assigned to.
        local_rows = result.exit_indices == 0
        np.testing.assert_array_equal(
            result.predictions[local_rows], result.exit_predictions["local"][local_rows]
        )

    def test_exit_rate_monotonically_increases_with_threshold(self, trained_ddnn, tiny_test):
        fractions = [
            StagedInferenceEngine(trained_ddnn, t).run(tiny_test).local_exit_fraction
            for t in (0.0, 0.3, 0.6, 0.9, 1.0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_communication_decreases_with_threshold(self, trained_ddnn, tiny_test):
        low = StagedInferenceEngine(trained_ddnn, 0.1)
        high = StagedInferenceEngine(trained_ddnn, 0.95)
        assert low.communication_bytes(low.run(tiny_test)) >= high.communication_bytes(
            high.run(tiny_test)
        )

    def test_overall_accuracy_and_per_exit_accuracy(self, trained_ddnn, tiny_test):
        result = StagedInferenceEngine(trained_ddnn, 0.8).run(tiny_test)
        overall = result.overall_accuracy(tiny_test.labels)
        assert 0.0 <= overall <= 1.0
        assert 0.0 <= result.exit_accuracy("cloud", tiny_test.labels) <= 1.0
        exited = result.accuracy_of_exited_samples("local", tiny_test.labels)
        assert np.isnan(exited) or 0.0 <= exited <= 1.0

    def test_targets_captured_from_dataset(self, trained_ddnn, tiny_test):
        result = StagedInferenceEngine(trained_ddnn, 0.5).run(tiny_test)
        assert result.targets is not None
        assert result.overall_accuracy() == result.overall_accuracy(tiny_test.labels)

    def test_threshold_list_validation(self, trained_ddnn):
        with pytest.raises(ValueError):
            StagedInferenceEngine(trained_ddnn, [0.1, 0.2, 0.3, 0.4])

    def test_raw_array_input_requires_explicit_targets(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        result = engine.run(tiny_test.images)
        with pytest.raises(ValueError):
            result.overall_accuracy()

    def test_communication_reduction_factor(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        result = engine.run(tiny_test)
        assert engine.communication_reduction(result) > 1.0


class TestThresholdSearch:
    def test_search_returns_best_candidate(self, trained_ddnn, tiny_test):
        outcome = search_threshold(trained_ddnn, tiny_test, grid=(0.0, 0.5, 1.0))
        assert outcome.best in outcome.candidates
        assert outcome.best.overall_accuracy == max(
            candidate.overall_accuracy for candidate in outcome.candidates
        )
        assert 0.0 <= outcome.best_threshold <= 1.0

    def test_threshold_for_exit_rate_targets_fraction(self, trained_ddnn, tiny_test):
        outcome = threshold_for_exit_rate(
            trained_ddnn, tiny_test, target_fraction=1.0, grid=(0.0, 0.5, 1.0)
        )
        assert outcome.best.local_exit_fraction == pytest.approx(1.0)

    def test_invalid_target_fraction(self, trained_ddnn, tiny_test):
        with pytest.raises(ValueError):
            threshold_for_exit_rate(trained_ddnn, tiny_test, target_fraction=1.5)


class TestAccuracyReports:
    def test_evaluate_overall_produces_full_report(self, trained_ddnn, tiny_test):
        report = evaluate_overall(trained_ddnn, tiny_test, thresholds=0.8)
        assert report.local_accuracy is not None
        assert report.cloud_accuracy is not None
        assert report.edge_accuracy is None
        assert 0.0 <= report.overall_accuracy <= 1.0
        assert report.communication_bytes > 0

    def test_full_report_includes_individual_accuracy(self, trained_ddnn, tiny_test):
        report = full_accuracy_report(
            trained_ddnn, tiny_test, thresholds=0.8, individual_accuracy={0: 0.5}
        )
        payload = report.as_dict()
        assert payload["individual_accuracy"] == {0: 0.5}
        assert "local_accuracy" in payload and "overall_accuracy" in payload


class TestSerializationOfDDNN:
    def test_save_load_preserves_predictions(self, trained_ddnn, tiny_test, tiny_config, tmp_path):
        path = tmp_path / "ddnn.npz"
        save_module(trained_ddnn, path)
        restored = build_ddnn(tiny_config)
        load_module(restored, path)
        restored.eval()
        original = StagedInferenceEngine(trained_ddnn, 0.8).run(tiny_test)
        reloaded = StagedInferenceEngine(restored, 0.8).run(tiny_test)
        np.testing.assert_array_equal(original.predictions, reloaded.predictions)
