"""Unit tests for the Module system and standard layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=np.random.default_rng(0))
        self.second = Linear(8, 2, rng=np.random.default_rng(1))
        self.register_buffer("scale", np.array([2.0]))

    def forward(self, inputs):
        return self.second(self.first(inputs).relu())


class TestModuleSystem:
    def test_parameters_are_registered_recursively(self):
        model = _ToyModel()
        names = dict(model.named_parameters())
        assert set(names) == {"first.weight", "first.bias", "second.weight", "second.bias"}
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_buffers_are_registered(self):
        model = _ToyModel()
        assert dict(model.named_buffers())["scale"][0] == 2.0

    def test_train_eval_propagates(self):
        model = _ToyModel()
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_all_parameter_grads(self):
        model = _ToyModel()
        out = model(Tensor(np.ones((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        model = _ToyModel()
        other = _ToyModel()
        state = model.state_dict()
        other.load_state_dict(state)
        for (name_a, param_a), (name_b, param_b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_load_state_dict_rejects_shape_mismatch(self):
        model = _ToyModel()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_missing_keys(self):
        model = _ToyModel()
        state = model.state_dict()
        del state["second.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_forward_not_implemented_on_base_module(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))


class TestSequential:
    def test_applies_layers_in_order(self):
        model = Sequential(Linear(3, 5, rng=np.random.default_rng(0)), ReLU(), Flatten())
        out = model(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)
        assert [type(layer).__name__ for layer in model] == ["Linear", "ReLU", "Flatten"]

    def test_registers_child_parameters(self):
        model = Sequential(Linear(3, 5), Linear(5, 2))
        assert model.num_parameters() == 3 * 5 + 5 + 5 * 2 + 2


class TestLinear:
    def test_output_shape_and_bias(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, np.zeros((2, 3)))

    def test_no_bias_option(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_matmul(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)


class TestConvAndPoolLayers:
    def test_conv2d_layer_shape(self):
        layer = Conv2d(3, 6, kernel_size=3, stride=1, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)

    def test_maxpool_layer_defaults_stride_to_kernel(self):
        layer = MaxPool2d(2)
        out = layer(Tensor(np.zeros((1, 1, 8, 8))))
        assert out.shape == (1, 1, 4, 4)

    def test_avgpool_layer(self):
        layer = AvgPool2d(3, stride=2, padding=1)
        out = layer(Tensor(np.zeros((1, 2, 16, 16))))
        assert out.shape == (1, 2, 8, 8)


class TestBatchNorm:
    def test_training_mode_normalizes_batch(self):
        layer = BatchNorm1d(3)
        x = np.random.default_rng(0).standard_normal((64, 3)) * 5 + 2
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(3), atol=1e-2)

    def test_running_statistics_are_updated(self):
        layer = BatchNorm1d(2, momentum=0.5)
        x = np.ones((4, 2)) * 3.0
        layer(Tensor(x))
        np.testing.assert_allclose(layer.running_mean, [1.5, 1.5])

    def test_eval_mode_uses_running_statistics(self):
        layer = BatchNorm1d(2, momentum=1.0)
        train_batch = np.random.default_rng(0).standard_normal((32, 2)) * 2 + 1
        layer(Tensor(train_batch))
        layer.eval()
        single = layer(Tensor(np.array([[1.0, 1.0]]))).data
        expected = (np.array([[1.0, 1.0]]) - layer.running_mean) / np.sqrt(
            layer.running_var + layer.eps
        )
        np.testing.assert_allclose(single, expected, atol=1e-10)

    def test_batchnorm2d_normalizes_per_channel(self):
        layer = BatchNorm2d(3)
        x = np.random.default_rng(1).standard_normal((8, 3, 4, 4)) * 4 - 1
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4))))
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(np.zeros((2, 3))))

    def test_state_dict_includes_running_stats(self):
        layer = BatchNorm1d(2)
        layer(Tensor(np.ones((4, 2))))
        state = layer.state_dict()
        assert "running_mean" in state and "running_var" in state
        fresh = BatchNorm1d(2)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, layer.running_mean)


class TestActivationsAndUtility:
    def test_relu_sigmoid_tanh_identity_flatten(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(ReLU()(x).data, [[0.0, 2.0]])
        assert Sigmoid()(x).data.shape == (1, 2)
        assert Tanh()(x).data.shape == (1, 2)
        np.testing.assert_allclose(Identity()(x).data, x.data)
        assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad
