"""Tests for the distributed serving fabric (event loop, tiers, workers, links)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DDNNConfig, DDNNTopology, DDNNTrainer, TrainingConfig, build_ddnn
from repro.core.cascade import ExitCascade
from repro.hierarchy import LinkSpec, partition_ddnn
from repro.hierarchy.partition import DEFAULT_LOCAL_LINK, DEFAULT_UPLINK
from repro.serving import (
    AdaptiveThreshold,
    BatchingPolicy,
    DDNNServer,
    DistributedServingFabric,
    EventLoop,
    PoissonProcess,
    SimulatedClock,
)


def _decisions(responses):
    responses = sorted(responses, key=lambda r: r.request_id)
    return (
        np.array([r.prediction for r in responses]),
        np.array([r.exit_index for r in responses]),
        np.array([r.entropy for r in responses]),
    )


class TestEventLoop:
    def test_fires_in_time_order_with_fifo_ties(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda t: fired.append(("b", t)))
        loop.schedule(1.0, lambda t: fired.append(("a", t)))
        loop.schedule(2.0, lambda t: fired.append(("c", t)))
        loop.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 2.0)]
        assert loop.clock.now == 2.0

    def test_callbacks_may_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                loop.schedule_after(1.0, chain)

        loop.schedule(0.5, chain)
        loop.run()
        assert fired == [0.5, 1.5, 2.5]

    def test_past_events_fire_now_and_never_rewind(self):
        loop = EventLoop(SimulatedClock(start=5.0))
        times = []
        loop.schedule(1.0, times.append)
        loop.run()
        assert times == [5.0]

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever(t):
            loop.schedule_after(1.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            loop.run(max_events=10)


class TestFabricEquivalence:
    def test_two_tier_multiworker_matches_eager_baseline(self, trained_ddnn, tiny_test):
        """Acceptance: >=2 tiers, N>=2 workers, link delays on — exit
        decisions byte-identical to the monolithic single-loop baseline."""
        baseline = ExitCascade.for_model(trained_ddnn, 0.8).run_model(
            trained_ddnn, tiny_test.images
        )
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            workers_per_tier=2,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
        )
        assert len(fabric.tiers) >= 2
        predictions, exits, entropies = _decisions(fabric.serve_dataset(tiny_test))
        np.testing.assert_array_equal(predictions, baseline.predictions)
        np.testing.assert_array_equal(exits, baseline.exit_indices)
        np.testing.assert_array_equal(entropies, baseline.entropies)

    def test_worker_count_invariance(self, trained_ddnn, tiny_test):
        """N-worker results equal 1-worker results up to response ordering."""
        results = {}
        for workers in (1, 3):
            fabric = DistributedServingFabric(
                partition_ddnn(trained_ddnn),
                0.8,
                workers_per_tier=workers,
                batching=BatchingPolicy(max_batch_size=4, max_wait_s=0.0),
            )
            results[workers] = _decisions(fabric.serve_dataset(tiny_test))
        for one, many in zip(results[1], results[3]):
            np.testing.assert_array_equal(one, many)

    def test_compiled_per_worker_plans_match_eager(self, trained_ddnn, tiny_test):
        baseline = ExitCascade.for_model(trained_ddnn, 0.8).run_model(
            trained_ddnn, tiny_test.images
        )
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            workers_per_tier=2,
            compile=True,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
        )
        # Every worker owns a *distinct* plan bundle (buffer-arena safety).
        for tier in fabric.tiers:
            bundles = [worker.plans for worker in tier.workers]
            assert all(bundle is not None for bundle in bundles)
            assert len({id(bundle) for bundle in bundles}) == len(bundles)
        predictions, exits, _ = _decisions(fabric.serve_dataset(tiny_test))
        np.testing.assert_array_equal(predictions, baseline.predictions)
        np.testing.assert_array_equal(exits, baseline.exit_indices)

    def test_edge_topology_three_tier_fabric(self, tiny_train, tiny_test):
        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
            seed=5,
        )
        model = build_ddnn(config)
        DDNNTrainer(model, TrainingConfig(epochs=2, batch_size=32, seed=0)).fit(tiny_train)
        model.eval()
        baseline = ExitCascade.for_model(model, [0.7, 0.8]).run_model(
            model, tiny_test.images
        )
        fabric = DistributedServingFabric(
            partition_ddnn(model),
            [0.7, 0.8],
            workers_per_tier=2,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
        )
        assert fabric.tier_names == ["devices", "edge", "cloud"]
        predictions, exits, _ = _decisions(fabric.serve_dataset(tiny_test))
        np.testing.assert_array_equal(predictions, baseline.predictions)
        np.testing.assert_array_equal(exits, baseline.exit_indices)

    def test_single_tier_degenerate_case_is_the_server(self, trained_ddnn, tiny_test):
        """DDNNServer (one tier running the whole cascade) routes and
        predicts exactly like the fabric — the degenerate case stays valid."""
        server = DDNNServer(trained_ddnn, 0.8)
        server_responses = server.serve_dataset(tiny_test)
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
        )
        fabric_responses = fabric.serve_dataset(tiny_test)
        np.testing.assert_array_equal(
            [r.prediction for r in server_responses],
            [r.prediction for r in fabric_responses],
        )
        np.testing.assert_array_equal(
            [r.exit_index for r in server_responses],
            [r.exit_index for r in fabric_responses],
        )


class TestLinkDelayAccounting:
    def test_uplink_latency_appears_in_offloaded_latency_only(self, trained_ddnn, tiny_test):
        """Raising the uplink propagation latency by delta shifts every
        offloaded request's latency by exactly delta and no local one's."""
        delta = 0.25
        runs = {}
        for label, extra in (("base", 0.0), ("slow", delta)):
            uplink = LinkSpec(
                bandwidth_bytes_per_s=DEFAULT_UPLINK.bandwidth_bytes_per_s,
                latency_s=DEFAULT_UPLINK.latency_s + extra,
            )
            fabric = DistributedServingFabric(
                partition_ddnn(trained_ddnn, uplink=uplink),
                0.8,
                batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
            )
            runs[label] = sorted(
                fabric.serve_dataset(tiny_test), key=lambda r: r.request_id
            )
        for base, slow in zip(runs["base"], runs["slow"]):
            assert base.exit_name == slow.exit_name
            if base.exit_name == "cloud":
                assert slow.path_latency_s == pytest.approx(
                    base.path_latency_s + delta
                )
                assert slow.latency_s >= base.latency_s
            else:
                assert slow.path_latency_s == pytest.approx(base.path_latency_s)

    def test_transfer_time_scales_with_bandwidth(self, trained_ddnn, tiny_test):
        runs = {}
        for label, bandwidth_scale in (("fast", 1.0), ("slow", 0.1)):
            uplink = LinkSpec(
                bandwidth_bytes_per_s=DEFAULT_UPLINK.bandwidth_bytes_per_s
                * bandwidth_scale,
                latency_s=DEFAULT_UPLINK.latency_s,
            )
            fabric = DistributedServingFabric(
                partition_ddnn(trained_ddnn, uplink=uplink),
                0.8,
                batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
            )
            responses = fabric.serve_dataset(tiny_test)
            offloaded = [r for r in responses if r.exit_name == "cloud"]
            assert offloaded, "need offloaded samples to observe transfer delay"
            runs[label] = (responses, np.mean([r.path_latency_s for r in offloaded]))
        assert runs["slow"][1] > runs["fast"][1]
        # Bandwidth changes time, never bytes or decisions.
        for fast, slow in zip(*(sorted(r[0], key=lambda x: x.request_id) for r in runs.values())):
            assert fast.prediction == slow.prediction
            assert fast.bytes_transferred == pytest.approx(slow.bytes_transferred)

    def test_client_ingress_link_delays_every_request(self, trained_ddnn, tiny_test):
        ingress = LinkSpec(bandwidth_bytes_per_s=1_000.0, latency_s=0.5)
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
            client_link=ingress,
            request_bytes=500.0,
        )
        responses = fabric.serve_dataset(tiny_test)
        expected = 0.5 + 500.0 / 1_000.0
        for response in responses:
            assert response.path_latency_s >= expected
            assert response.latency_s >= expected
        assert fabric.ingress.stats.messages == len(tiny_test)
        assert fabric.ingress.stats.bytes_transferred == pytest.approx(
            500.0 * len(tiny_test)
        )


class TestOpenLoopAndAdaptive:
    def test_open_loop_report(self, trained_ddnn, tiny_test):
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.005),
        )
        report = fabric.open_loop(
            PoissonProcess(100.0, seed=1),
            tiny_test.images,
            targets=tiny_test.labels,
            num_requests=60,
        )
        assert report.served == 60
        assert sum(report.exit_fractions.values()) == pytest.approx(1.0)
        assert report.offload_fraction == pytest.approx(
            1.0 - report.exit_fractions.get("local", 0.0)
        )
        assert 0.0 <= report.p50_latency_s <= report.p95_latency_s <= report.max_latency_s
        assert report.accuracy is not None and 0.0 <= report.accuracy <= 1.0

    def test_adaptive_threshold_sheds_under_pressure(self, trained_ddnn, tiny_test):
        from repro.serving import ServiceModel

        device_service = ServiceModel(0.02, 0.02)

        def build(adaptive):
            return DistributedServingFabric(
                partition_ddnn(trained_ddnn),
                0.8,
                batching=BatchingPolicy(max_batch_size=4, max_wait_s=0.002),
                # Slow device tier so the arrival process overloads it.
                service_models=[device_service, None],
                adaptive=adaptive,
            )

        # 1.5x the single device-tier worker's capacity: sustained overload.
        process = PoissonProcess(1.5 * device_service.capacity_rps(4), seed=3)
        plain = build(None).open_loop(
            process, tiny_test.images, targets=tiny_test.labels, num_requests=80
        )
        adaptive = build(AdaptiveThreshold(depth_trigger=8)).open_loop(
            process, tiny_test.images, targets=tiny_test.labels, num_requests=80
        )
        assert adaptive.relaxed_fraction > 0.0
        assert adaptive.offload_fraction < plain.offload_fraction
        assert adaptive.p95_latency_s < plain.p95_latency_s

    def test_adaptive_without_pressure_changes_nothing(self, trained_ddnn, tiny_test):
        baseline = ExitCascade.for_model(trained_ddnn, 0.8).run_model(
            trained_ddnn, tiny_test.images
        )
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
            adaptive=AdaptiveThreshold(depth_trigger=10_000),
        )
        predictions, exits, _ = _decisions(fabric.serve_dataset(tiny_test))
        np.testing.assert_array_equal(predictions, baseline.predictions)
        np.testing.assert_array_equal(exits, baseline.exit_indices)

    def test_adaptive_threshold_validation(self):
        with pytest.raises(ValueError):
            AdaptiveThreshold(depth_trigger=0)
        with pytest.raises(ValueError):
            AdaptiveThreshold(depth_trigger=4, relaxed_threshold=1.5)


class TestFabricValidation:
    def test_rejects_mismatched_per_tier_lists(self, trained_ddnn):
        with pytest.raises(ValueError):
            DistributedServingFabric(
                partition_ddnn(trained_ddnn), 0.8, workers_per_tier=[1, 2, 3]
            )
        with pytest.raises(ValueError):
            DistributedServingFabric(
                partition_ddnn(trained_ddnn), 0.8, service_models=[None]
            )

    def test_rejects_bad_views_shape(self, trained_ddnn, tiny_test):
        fabric = DistributedServingFabric(partition_ddnn(trained_ddnn), 0.8)
        with pytest.raises(ValueError):
            fabric.submit(tiny_test.images)  # 5-D, not a single sample
        with pytest.raises(ValueError):
            fabric.open_loop(
                PoissonProcess(10.0), tiny_test.images[0], num_requests=2
            )  # 4-D, not a stream

    def test_mean_bytes_matches_hierarchy_accounting(self, trained_ddnn, tiny_test):
        """The fabric's per-request byte accounting equals the offline
        hierarchy runtime's Eq. 1 accounting (same sections, same messages)."""
        from repro.hierarchy import HierarchyRuntime

        offline = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8).run(tiny_test)
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.0),
        )
        responses = fabric.serve_dataset(tiny_test)
        np.testing.assert_allclose(
            [r.bytes_transferred for r in responses], offline.bytes_per_sample
        )
