"""Additional hierarchy tests: node accounting, deployment wiring, link specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DDNNConfig, DDNNTopology, build_ddnn
from repro.core.aggregation import MaxPoolAggregator
from repro.hierarchy import (
    CLOUD_NAME,
    DEFAULT_EDGE_LINK,
    DEFAULT_LOCAL_LINK,
    DEFAULT_UPLINK,
    AggregatorNode,
    ComputeNode,
    EndDeviceNode,
    LinkSpec,
    partition_ddnn,
)
from repro.nn import Tensor


@pytest.fixture(scope="module")
def small_model():
    return build_ddnn(
        DDNNConfig(num_devices=3, device_filters=2, cloud_filters=4, cloud_hidden_units=8, seed=0)
    )


class TestComputeNode:
    def test_invalid_throughput_rejected(self):
        with pytest.raises(ValueError):
            ComputeNode("x", ops_per_second=0)

    def test_fail_and_restore(self):
        node = ComputeNode("x")
        assert not node.failed
        node.fail()
        assert node.failed
        assert "failed" in repr(node)
        node.restore()
        assert not node.failed

    def test_accounting(self):
        node = ComputeNode("x", ops_per_second=1000.0)
        seconds = node._account(500.0, samples=2)
        assert seconds == pytest.approx(0.5)
        assert node.stats.samples_processed == 2
        assert node.stats.compute_seconds == pytest.approx(0.5)
        node.reset_stats()
        assert node.stats.samples_processed == 0


class TestEndDeviceNode:
    def test_process_returns_features_scores_and_time(self, small_model):
        node = EndDeviceNode("device-0", small_model.device_branches[0])
        views = np.random.default_rng(0).random((3, 3, 32, 32))
        features, scores, seconds = node.process(views)
        assert features.shape == (3, 2, 16, 16)
        assert scores.shape == (3, 3)
        assert seconds > 0

    def test_process_accepts_single_view(self, small_model):
        node = EndDeviceNode("device-0", small_model.device_branches[0])
        features, scores, _ = node.process(np.zeros((3, 32, 32)))
        assert features.shape[0] == 1 and scores.shape[0] == 1

    def test_failed_device_emits_zeros_and_no_compute(self, small_model):
        node = EndDeviceNode("device-0", small_model.device_branches[0])
        node.fail()
        features, scores, seconds = node.process(np.ones((2, 3, 32, 32)))
        assert seconds == 0.0
        np.testing.assert_allclose(features, 0.0)
        np.testing.assert_allclose(scores, 0.0)

    def test_payload_sizes(self, small_model):
        node = EndDeviceNode("device-0", small_model.device_branches[0])
        assert node.summary_bytes() == 12.0  # 4 bytes * 3 classes
        assert node.feature_bytes() == 2 * 16 * 16 / 8
        assert node.raw_input_bytes() == 3072.0


class TestAggregatorNode:
    def test_aggregate_matches_aggregator(self):
        node = AggregatorNode("gateway", MaxPoolAggregator(2))
        a = np.array([[1.0, 5.0]])
        b = np.array([[3.0, 2.0]])
        fused, seconds = node.aggregate([a, b])
        np.testing.assert_allclose(fused, [[3.0, 5.0]])
        assert seconds >= 0
        assert node.stats.samples_processed == 1


class TestLinkSpecsAndPartition:
    def test_default_link_specs_ordering(self):
        # Local gateway links are faster than the wide-area uplink.
        assert DEFAULT_LOCAL_LINK.bandwidth_bytes_per_s > DEFAULT_UPLINK.bandwidth_bytes_per_s
        assert DEFAULT_LOCAL_LINK.latency_s < DEFAULT_UPLINK.latency_s
        assert DEFAULT_EDGE_LINK.bandwidth_bytes_per_s >= DEFAULT_UPLINK.bandwidth_bytes_per_s

    def test_custom_link_spec_applied(self, small_model):
        deployment = partition_ddnn(
            small_model, uplink=LinkSpec(bandwidth_bytes_per_s=123.0, latency_s=0.5)
        )
        link = deployment.fabric.link("device-0", CLOUD_NAME)
        assert link.bandwidth_bytes_per_s == 123.0
        assert link.latency_s == 0.5

    def test_cloud_only_topology_has_no_gateway(self):
        model = build_ddnn(
            DDNNConfig(
                num_devices=2,
                device_filters=2,
                cloud_filters=4,
                cloud_hidden_units=8,
                topology=DDNNTopology.from_name("cloud_only"),
            )
        )
        deployment = partition_ddnn(model)
        assert deployment.local_aggregator is None
        assert deployment.fabric.has_link("device-0", CLOUD_NAME)

    def test_edge_topology_wiring(self):
        model = build_ddnn(
            DDNNConfig(
                num_devices=4,
                device_filters=2,
                cloud_filters=4,
                edge_filters=3,
                cloud_hidden_units=8,
                topology=DDNNTopology.from_name("devices_edges_cloud", num_edges=2),
            )
        )
        deployment = partition_ddnn(model)
        assert len(deployment.edges) == 2
        # Devices connect to their own edge, edges connect to the cloud.
        assert deployment.fabric.has_link("device-0", "edge-0")
        assert deployment.fabric.has_link("device-3", "edge-1")
        assert not deployment.fabric.has_link("device-0", "edge-1")
        assert deployment.fabric.has_link("edge-0", CLOUD_NAME)
        assert not deployment.fabric.has_link("device-0", CLOUD_NAME)
        assert deployment.edges[0].feature_bytes() == 3 * 8 * 8 / 8

    def test_deployment_reset_clears_stats_and_failures(self, small_model):
        deployment = partition_ddnn(small_model)
        deployment.devices[0].fail()
        deployment.devices[1].stats.bytes_sent = 100.0
        deployment.reset()
        assert not deployment.devices[0].failed
        assert deployment.devices[1].stats.bytes_sent == 0.0
        assert deployment.fabric.total_bytes() == 0.0
