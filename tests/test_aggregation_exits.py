"""Tests for aggregation schemes and the entropy-threshold exit criterion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AveragePoolAggregator,
    ConcatAggregator,
    ExitCriterion,
    MaxPoolAggregator,
    make_aggregator,
    normalized_entropy,
    softmax_probabilities,
)
from repro.core.exits import exit_thresholds_from_sequence
from repro.nn import Tensor


def _vectors(num_devices=3, batch=4, features=5, seed=0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.standard_normal((batch, features))) for _ in range(num_devices)]


class TestMaxPoolAggregator:
    def test_componentwise_maximum(self):
        aggregator = MaxPoolAggregator(2)
        a = Tensor(np.array([[1.0, 5.0]]))
        b = Tensor(np.array([[3.0, 2.0]]))
        np.testing.assert_allclose(aggregator([a, b]).data, [[3.0, 5.0]])

    def test_single_device_is_identity(self):
        aggregator = MaxPoolAggregator(1)
        a = Tensor(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(aggregator([a]).data, a.data)

    def test_works_on_feature_maps(self):
        inputs = [Tensor(np.random.default_rng(i).standard_normal((2, 3, 4, 4))) for i in range(3)]
        out = MaxPoolAggregator(3)(inputs)
        assert out.shape == (2, 3, 4, 4)
        np.testing.assert_allclose(out.data, np.maximum.reduce([t.data for t in inputs]))

    def test_wrong_device_count_raises(self):
        with pytest.raises(ValueError):
            MaxPoolAggregator(3)(_vectors(num_devices=2))

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            MaxPoolAggregator(2)([Tensor(np.zeros((1, 2))), Tensor(np.zeros((1, 3)))])


class TestAveragePoolAggregator:
    def test_componentwise_mean(self):
        aggregator = AveragePoolAggregator(2)
        a = Tensor(np.array([[2.0, 4.0]]))
        b = Tensor(np.array([[4.0, 0.0]]))
        np.testing.assert_allclose(aggregator([a, b]).data, [[3.0, 2.0]])

    def test_matches_numpy_mean(self):
        inputs = _vectors(num_devices=4, seed=3)
        out = AveragePoolAggregator(4)(inputs)
        np.testing.assert_allclose(out.data, np.mean([t.data for t in inputs], axis=0))


class TestConcatAggregator:
    def test_concatenation_expands_feature_dimension(self):
        aggregator = ConcatAggregator(3)
        out = aggregator(_vectors(num_devices=3, features=5))
        assert out.shape == (4, 15)
        assert aggregator.output_channels(5) == 15

    def test_projection_maps_back_to_feature_dim(self):
        aggregator = ConcatAggregator(3, feature_dim=5, project=True, rng=np.random.default_rng(0))
        out = aggregator(_vectors(num_devices=3, features=5))
        assert out.shape == (4, 5)
        assert aggregator.output_channels(5) == 5
        assert len(aggregator.parameters()) == 2  # projection weight + bias

    def test_projection_requires_feature_dim(self):
        with pytest.raises(ValueError):
            ConcatAggregator(3, project=True)

    def test_projection_rejects_feature_maps(self):
        aggregator = ConcatAggregator(2, feature_dim=3, project=True)
        with pytest.raises(ValueError):
            aggregator([Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((1, 3, 4, 4)))])

    def test_channel_concatenation_for_feature_maps(self):
        aggregator = ConcatAggregator(2)
        inputs = [Tensor(np.ones((1, 3, 4, 4))), Tensor(np.zeros((1, 3, 4, 4)))]
        out = aggregator(inputs)
        assert out.shape == (1, 6, 4, 4)


class TestMakeAggregator:
    @pytest.mark.parametrize("scheme,cls", [("MP", MaxPoolAggregator), ("AP", AveragePoolAggregator), ("CC", ConcatAggregator)])
    def test_factory_by_code(self, scheme, cls):
        assert isinstance(make_aggregator(scheme, 3, feature_dim=4), cls)

    def test_lowercase_accepted(self):
        assert isinstance(make_aggregator("mp", 2), MaxPoolAggregator)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_aggregator("XX", 2)

    def test_zero_devices_rejected(self):
        with pytest.raises(ValueError):
            MaxPoolAggregator(0)


class TestNormalizedEntropy:
    def test_uniform_distribution_gives_one(self):
        probabilities = np.full((1, 4), 0.25)
        assert normalized_entropy(probabilities)[0] == pytest.approx(1.0)

    def test_one_hot_gives_zero(self):
        probabilities = np.array([[1.0, 0.0, 0.0]])
        assert normalized_entropy(probabilities)[0] == pytest.approx(0.0)

    def test_values_bounded_in_unit_interval(self):
        logits = np.random.default_rng(0).standard_normal((100, 3))
        entropy = normalized_entropy(softmax_probabilities(logits))
        assert (entropy >= 0).all() and (entropy <= 1.0 + 1e-12).all()

    def test_requires_at_least_two_classes(self):
        with pytest.raises(ValueError):
            normalized_entropy(np.array([[1.0]]))

    def test_softmax_probabilities_stable(self):
        probabilities = softmax_probabilities(np.array([[1e6, 0.0]]))
        assert np.isfinite(probabilities).all()


class TestExitCriterion:
    def test_threshold_bounds_validated(self):
        with pytest.raises(ValueError):
            ExitCriterion(-0.1)
        with pytest.raises(ValueError):
            ExitCriterion(1.5)

    def test_threshold_zero_exits_nothing_threshold_one_exits_all(self):
        logits = np.random.default_rng(0).standard_normal((20, 3))
        none = ExitCriterion(0.0).evaluate(logits)
        everything = ExitCriterion(1.0).evaluate(logits)
        assert none.exit_fraction == 0.0
        assert everything.exit_fraction == 1.0

    def test_exit_mask_matches_entropy_rule(self):
        logits = np.random.default_rng(1).standard_normal((50, 3))
        criterion = ExitCriterion(0.6, name="local")
        decision = criterion.evaluate(logits)
        np.testing.assert_array_equal(decision.exit_mask, decision.entropies <= 0.6)
        np.testing.assert_array_equal(
            decision.predictions, decision.probabilities.argmax(axis=1)
        )

    def test_accepts_tensor_input(self):
        decision = ExitCriterion(0.5).evaluate(Tensor(np.zeros((2, 3))))
        assert decision.probabilities.shape == (2, 3)

    def test_with_threshold_copies(self):
        criterion = ExitCriterion(0.3, name="local")
        other = criterion.with_threshold(0.9)
        assert other.threshold == 0.9 and other.name == "local"
        assert criterion.threshold == 0.3

    def test_exit_thresholds_from_sequence(self):
        criteria = exit_thresholds_from_sequence([0.1, 0.9], names=["local", "cloud"])
        assert [c.name for c in criteria] == ["local", "cloud"]
        with pytest.raises(ValueError):
            exit_thresholds_from_sequence([0.1], names=["a", "b"])

    def test_repr_contains_name(self):
        assert "local" in repr(ExitCriterion(0.5, name="local"))
