"""Tests for DDNN configuration and model construction / forward pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DDNNConfig, DDNNTopology, TrainingConfig, build_ddnn
from repro.core.ddnn import DDNN, DeviceBranch, _partition_devices
from repro.nn import Tensor


class TestDDNNTopology:
    def test_from_name_flags(self):
        devices_cloud = DDNNTopology.from_name("devices_cloud")
        assert devices_cloud.has_local_exit and not devices_cloud.has_edge
        cloud_only = DDNNTopology.from_name("cloud_only")
        assert not cloud_only.has_local_exit
        edge = DDNNTopology.from_name("devices_edge_cloud")
        assert edge.has_edge and edge.num_edges == 1
        multi_edge = DDNNTopology.from_name("devices_edges_cloud", num_edges=3)
        assert multi_edge.num_edges == 3

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            DDNNTopology.from_name("device_mesh")


class TestDDNNConfig:
    def test_defaults_match_paper_architecture(self):
        config = DDNNConfig()
        assert config.num_devices == 6
        assert config.num_classes == 3
        assert config.input_size == 32
        assert config.scheme == "MP-CC"
        assert config.device_output_size == 16
        assert config.device_feature_map_elements == 256

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            DDNNConfig(num_devices=0)
        with pytest.raises(ValueError):
            DDNNConfig(num_classes=1)
        with pytest.raises(ValueError):
            DDNNConfig(device_filters=0)
        with pytest.raises(ValueError):
            DDNNConfig(local_aggregation="XX")

    def test_device_output_size_with_two_blocks(self):
        config = DDNNConfig(device_conv_blocks=2)
        assert config.device_output_size == 8

    def test_training_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)


class TestDeviceBranch:
    def test_outputs_feature_map_and_scores(self):
        branch = DeviceBranch(3, 4, 32, 3, rng=np.random.default_rng(0))
        features, scores = branch(Tensor(np.random.default_rng(1).standard_normal((2, 3, 32, 32))))
        assert features.shape == (2, 4, 16, 16)
        assert scores.shape == (2, 3)

    def test_memory_under_2kb_for_paper_settings(self):
        for filters in (1, 2, 4, 8):
            branch = DeviceBranch(3, filters, 32, 3)
            assert branch.memory_bytes() < 2048

    def test_multiple_conv_blocks(self):
        branch = DeviceBranch(3, 4, 32, 3, conv_blocks=2)
        features, _ = branch(Tensor(np.zeros((1, 3, 32, 32))))
        assert features.shape == (1, 4, 8, 8)


class TestBuildDDNN:
    def test_default_build_has_local_and_cloud_exits(self, tiny_config):
        model = build_ddnn(tiny_config)
        assert model.exit_names == ["local", "cloud"]
        assert model.num_exits == 2
        assert len(model.device_branches) == tiny_config.num_devices

    def test_overrides_apply(self, tiny_config):
        model = build_ddnn(tiny_config, local_aggregation="AP", num_devices=3)
        assert model.config.local_aggregation == "AP"
        assert len(model.device_branches) == 3

    def test_forward_output_shapes(self, tiny_config):
        model = build_ddnn(tiny_config)
        views = np.random.default_rng(0).random((5, tiny_config.num_devices, 3, 32, 32))
        output = model(views)
        assert [logits.shape for logits in output.exit_logits] == [(5, 3), (5, 3)]
        assert len(output.device_scores) == tiny_config.num_devices
        assert output.device_features[0].shape == (5, tiny_config.device_filters, 16, 16)
        assert output.final_logits is output.exit_logits[-1]
        assert output.logits_by_name("local") is output.exit_logits[0]
        with pytest.raises(KeyError):
            output.logits_by_name("edge")

    def test_forward_accepts_list_of_views(self, tiny_config):
        model = build_ddnn(tiny_config)
        views = [np.zeros((2, 3, 32, 32)) for _ in range(tiny_config.num_devices)]
        output = model(views)
        assert output.exit_logits[0].shape == (2, 3)

    def test_forward_rejects_wrong_device_count(self, tiny_config):
        model = build_ddnn(tiny_config)
        with pytest.raises(ValueError):
            model(np.zeros((2, tiny_config.num_devices + 1, 3, 32, 32)))
        with pytest.raises(ValueError):
            model(np.zeros((2, 3, 32, 32)))

    def test_cloud_only_topology_single_exit(self):
        config = DDNNConfig(
            num_devices=2,
            device_filters=2,
            cloud_filters=4,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("cloud_only"),
        )
        model = build_ddnn(config)
        assert model.exit_names == ["cloud"]
        output = model(np.zeros((3, 2, 3, 32, 32)))
        assert len(output.exit_logits) == 1

    def test_edge_topology_three_exits(self):
        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
        )
        model = build_ddnn(config)
        assert model.exit_names == ["local", "edge", "cloud"]
        output = model(np.zeros((2, 4, 3, 32, 32)))
        assert [l.shape for l in output.exit_logits] == [(2, 3)] * 3
        assert len(output.edge_features) == 1
        assert output.edge_features[0].shape == (2, 3, 8, 8)

    def test_multi_edge_topology_partitions_devices(self):
        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edges_cloud", num_edges=2),
        )
        model = build_ddnn(config)
        assert len(model.edge_models) == 2
        assert model.edge_device_groups == [[0, 1], [2, 3]]
        output = model(np.zeros((2, 4, 3, 32, 32)))
        assert len(output.edge_features) == 2

    @pytest.mark.parametrize("local,cloud", [("MP", "MP"), ("AP", "CC"), ("CC", "AP"), ("CC", "CC")])
    def test_all_aggregation_scheme_pairs_build_and_run(self, local, cloud):
        config = DDNNConfig(
            num_devices=3,
            device_filters=2,
            cloud_filters=4,
            cloud_hidden_units=8,
            local_aggregation=local,
            cloud_aggregation=cloud,
        )
        model = build_ddnn(config)
        output = model(np.zeros((2, 3, 3, 32, 32)))
        assert output.exit_logits[0].shape == (2, 3)
        assert output.exit_logits[1].shape == (2, 3)

    def test_summary_and_memory(self, tiny_config):
        model = build_ddnn(tiny_config)
        summary = model.summary()
        assert summary["num_devices"] == tiny_config.num_devices
        assert summary["exits"] == ["local", "cloud"]
        assert summary["parameters"] == model.num_parameters()
        assert all(m < 2048 for m in model.device_memory_bytes())

    def test_mixed_precision_cloud_builds(self, tiny_config):
        model = build_ddnn(tiny_config, binary_cloud=False)
        output = model(np.zeros((2, tiny_config.num_devices, 3, 32, 32)))
        assert output.exit_logits[1].shape == (2, 3)

    def test_partition_devices_helper(self):
        assert _partition_devices(6, 2) == [[0, 1, 2], [3, 4, 5]]
        assert _partition_devices(5, 2) == [[0, 1, 2], [3, 4]]
        with pytest.raises(ValueError):
            _partition_devices(2, 3)
        with pytest.raises(ValueError):
            _partition_devices(2, 0)

    def test_deterministic_initialisation_by_seed(self):
        config = DDNNConfig(num_devices=2, device_filters=2, cloud_filters=4, cloud_hidden_units=8, seed=9)
        a = build_ddnn(config)
        b = build_ddnn(config)
        for (name_a, param_a), (_, param_b) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(param_a.data, param_b.data)
