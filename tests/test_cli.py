"""Tests for the experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self, tmp_path):
        args = build_parser().parse_args(["run", "fig6_dataset_stats"])
        assert args.scale == "ci"
        assert args.output_dir is None

    def test_run_command_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig6_dataset_stats", "--scale", "paper", "--output-dir", str(tmp_path)]
        )
        assert args.scale == "paper"
        assert args.output_dir == tmp_path


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.splitlines()
        assert set(printed) == set(EXPERIMENT_REGISTRY)

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "not_an_experiment"])

    def test_run_single_experiment_and_write_output(self, tmp_path, capsys, monkeypatch):
        # Patch in a trivial experiment so the CLI test stays fast.
        from repro.experiments.results import ExperimentResult

        def fake_experiment(scale):
            result = ExperimentResult("fake_experiment", "Table 0", columns=["a"])
            result.add_row(a=1)
            return result

        monkeypatch.setitem(EXPERIMENT_REGISTRY, "fake_experiment", fake_experiment)
        exit_code = main(["run", "fake_experiment", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        assert "Table 0" in capsys.readouterr().out
        assert (tmp_path / "fake_experiment.txt").exists()
