"""Tests for the individual-device and cloud-only baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CloudOnlyBaseline,
    IndividualDeviceModel,
    individual_accuracies,
    train_individual_model,
)
from repro.core import TrainingConfig
from repro.nn import Tensor


class TestIndividualDeviceModel:
    def test_forward_shape(self):
        model = IndividualDeviceModel(filters=2, num_classes=3, seed=0)
        logits = model(Tensor(np.random.default_rng(0).random((4, 3, 32, 32))))
        assert logits.shape == (4, 3)

    def test_predict_returns_class_indices(self):
        model = IndividualDeviceModel(filters=2, num_classes=3, seed=0)
        predictions = model.predict(np.random.default_rng(0).random((7, 3, 32, 32)))
        assert predictions.shape == (7,)
        assert set(np.unique(predictions)).issubset({0, 1, 2})

    def test_predict_empty_input(self):
        model = IndividualDeviceModel(filters=2, seed=0)
        assert model.predict(np.zeros((0, 3, 32, 32))).shape == (0,)

    def test_train_individual_excludes_absent_samples(self, tiny_train):
        model = train_individual_model(
            tiny_train, device_index=0, filters=2, config=TrainingConfig(epochs=1, batch_size=32)
        )
        assert isinstance(model, IndividualDeviceModel)

    def test_training_learns_separable_views(self):
        """On a trivially separable single-device dataset the model must learn."""
        from repro.datasets import MVMCDataset

        rng = np.random.default_rng(0)
        num_samples = 60
        labels = rng.integers(0, 3, size=num_samples)
        level = np.array([0.15, 0.5, 0.85])[labels]
        images = np.clip(
            level[:, None, None, None, None]
            + rng.normal(0.0, 0.02, size=(num_samples, 1, 3, 32, 32)),
            0.0,
            1.0,
        )
        dataset = MVMCDataset(images, labels, labels[:, None], profiles=("camera-1",))
        model = train_individual_model(
            dataset, device_index=0, filters=2, config=TrainingConfig(epochs=12, batch_size=20)
        )
        predictions = model.predict(dataset.device_views(0))
        assert np.mean(predictions == labels) > 0.6

    def test_individual_accuracies_selected_devices(self, tiny_train, tiny_test):
        results = individual_accuracies(
            tiny_train,
            tiny_test,
            filters=2,
            config=TrainingConfig(epochs=2, batch_size=32),
            device_indices=[0, 2],
        )
        assert set(results) == {0, 2}
        assert all(0.0 <= value <= 1.0 for value in results.values())


class TestCloudOnlyBaseline:
    def test_single_exit_model(self):
        baseline = CloudOnlyBaseline(num_devices=3, device_filters=2, cloud_filters=4, cloud_hidden_units=8)
        assert baseline.model.exit_names == ["cloud"]

    def test_fit_and_evaluate(self, tiny_train, tiny_test):
        baseline = CloudOnlyBaseline(
            num_devices=tiny_train.num_devices,
            device_filters=2,
            cloud_filters=4,
            cloud_hidden_units=8,
            seed=0,
        )
        baseline.fit(tiny_train, TrainingConfig(epochs=2, batch_size=32))
        result = baseline.evaluate(tiny_test)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.bytes_per_device_per_sample == 3072.0

    def test_predictions_shape(self, tiny_train, tiny_test):
        baseline = CloudOnlyBaseline(
            num_devices=tiny_train.num_devices, device_filters=2, cloud_filters=4, cloud_hidden_units=8
        )
        baseline.fit(tiny_train, TrainingConfig(epochs=1, batch_size=32))
        assert baseline.predict(tiny_test).shape == (len(tiny_test),)

    def test_raw_offload_cost_scales_with_input(self):
        baseline = CloudOnlyBaseline(num_devices=2, input_size=16, device_filters=2, cloud_filters=4, cloud_hidden_units=8)
        assert baseline.bytes_per_device_per_sample() == 3 * 16 * 16
