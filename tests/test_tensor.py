"""Unit tests for the autodiff Tensor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, is_grad_enabled, maximum, no_grad, stack


class TestTensorBasics:
    def test_wraps_array_as_float64(self):
        tensor = Tensor([[1, 2], [3, 4]])
        assert tensor.dtype == np.float64
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4
        assert len(tensor) == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_returns_scalar(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)

    def test_detach_breaks_graph(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad
        assert np.shares_memory(detached.data, tensor.data)

    def test_zero_grad_clears_gradient(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        (tensor * 2).sum().backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4
        generated = Tensor.randn(5, 2, rng=np.random.default_rng(0))
        assert generated.shape == (5, 2)


class TestArithmetic:
    def test_add_and_radd(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = 1.0 + a + np.array([1.0, 1.0])
        np.testing.assert_allclose(out.data, [3.0, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_subtraction_and_negation(self):
        a = Tensor([3.0], requires_grad=True)
        out = 5.0 - a
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_multiplication_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_division_gradient(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1 / 3])
        np.testing.assert_allclose(b.grad, [-6 / 9])

    def test_power_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data ** 2)

    def test_power_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_gradient_unbroadcasts(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 2)
        assert b.grad.shape == (2,)
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_matmul_gradients(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[1.0], [1.0]]), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, [[4.0], [6.0]])


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.backward(np.ones((2, 1)))
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scales(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 1 / 8))

    def test_max_reduces_and_routes_gradient(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        out = a.max(axis=1)
        assert out.data == pytest.approx(5.0)
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_splits_gradient_on_ties(self):
        a = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        a.max(axis=1).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_reshape_and_transpose_roundtrip_gradient(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = a.reshape(3, 2).transpose()
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_flatten(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten().shape == (2, 12)
        assert a.flatten(start_dim=0).shape == (24,)

    def test_getitem_gradient(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        a[1:4].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1, 1, 0])


class TestElementwiseMath:
    def test_exp_log_roundtrip(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a.exp().log()
        np.testing.assert_allclose(out.data, a.data)

    def test_relu_masks_negative(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        out = a.relu()
        np.testing.assert_allclose(out.data, [0.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_range_and_grad(self):
        a = Tensor([0.0], requires_grad=True)
        out = a.sigmoid()
        assert out.data[0] == pytest.approx(0.5)
        out.backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(0.25)

    def test_tanh_gradient(self):
        a = Tensor([0.0], requires_grad=True)
        a.tanh().backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(1.0)

    def test_clip_gradient_passes_only_inside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_sign_ste_forward_and_backward(self):
        a = Tensor([-0.5, 0.0, 0.5, 3.0], requires_grad=True)
        out = a.sign_ste()
        np.testing.assert_allclose(out.data, [-1.0, 1.0, 1.0, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0, 1.0, 0.0])


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_needs_grad_for_non_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            a.backward()

    def test_gradients_accumulate_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        out = a * 2 + a * 3
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [5.0])

    def test_no_grad_context_disables_tracking(self):
        a = Tensor([1.0], requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._backward is None


class TestCombinators:
    def test_concatenate_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_stack_adds_dimension(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_maximum_elementwise_and_gradient_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        out = maximum([a, b])
        np.testing.assert_allclose(out.data, [3.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_maximum_ties_split_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        maximum([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_maximum_empty_raises(self):
        with pytest.raises(ValueError):
            maximum([])
