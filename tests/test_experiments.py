"""Tests for the experiment harness (one per paper table/figure).

Experiments are exercised at a deliberately tiny scale: the goal here is to
verify that each harness produces the right table structure, respects its
parameters and reports internally consistent numbers — not to reproduce the
paper's accuracy, which the benchmark harness does at larger scale.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments as experiments
from repro.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentScale,
    ci_scale,
    default_scale,
    paper_scale,
)
from repro.experiments.results import ExperimentResult, format_table


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(
        name="unit-test",
        train_samples=48,
        test_samples=20,
        epochs=2,
        batch_size=24,
        num_devices=4,
        device_filters=2,
        cloud_filters=4,
        cloud_conv_blocks=2,
        cloud_hidden_units=8,
        individual_epochs=2,
        data_seed=13,
        model_seed=2,
    )


class TestResultContainers:
    def test_add_row_validates_columns(self):
        result = ExperimentResult("x", "Table X", columns=["a", "b"])
        result.add_row(a=1, b=2.5)
        with pytest.raises(KeyError):
            result.add_row(a=1, c=3)
        assert result.column("a") == [1]
        with pytest.raises(KeyError):
            result.column("z")

    def test_to_text_renders_all_rows(self):
        result = ExperimentResult("x", "Table X", columns=["a", "b"])
        result.add_row(a=1, b=2.0)
        result.add_row(a=2, b=3.0)
        text = result.to_text()
        assert "Table X" in text
        assert text.count("\n") >= 3

    def test_format_table_handles_empty_rows(self):
        assert "a" in format_table(["a"], [])


class TestScales:
    def test_paper_scale_matches_paper_settings(self):
        scale = paper_scale()
        assert scale.train_samples == 680
        assert scale.test_samples == 171
        assert scale.epochs == 100
        assert scale.num_devices == 6

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert default_scale().name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert default_scale().name == "ci"
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            default_scale()

    def test_scale_config_builders(self):
        scale = ci_scale()
        config = scale.ddnn_config(device_filters=2)
        assert config.device_filters == 2
        assert config.num_devices == scale.num_devices
        training = scale.training_config(epochs=3)
        assert training.epochs == 3

    def test_registry_contains_all_paper_experiments(self):
        expected = {
            "fig6_dataset_stats",
            "table1_aggregation",
            "table2_fig7_threshold_sweep",
            "fig8_scaling_devices",
            "fig9_cloud_offloading",
            "fig10_fault_tolerance",
            "sec4h_communication_reduction",
        }
        assert expected.issubset(set(EXPERIMENT_REGISTRY))

    def test_model_cache_returns_same_object(self, tiny_scale):
        first, _ = experiments.get_trained_ddnn(tiny_scale)
        second, _ = experiments.get_trained_ddnn(tiny_scale)
        assert first is second


class TestExperimentHarnesses:
    def test_dataset_stats(self, tiny_scale):
        result = experiments.run_dataset_stats(tiny_scale)
        assert result.paper_reference == "Figure 6"
        assert len(result.rows) == tiny_scale.num_devices
        for row in result.rows:
            assert row["total"] == tiny_scale.train_samples

    def test_threshold_sweep_consistency(self, tiny_scale):
        result = experiments.run_threshold_sweep(tiny_scale, thresholds=(0.0, 0.5, 1.0))
        assert [row["threshold"] for row in result.rows] == [0.0, 0.5, 1.0]
        exits = result.column("local_exit_pct")
        assert exits[0] == 0.0 and exits[-1] == 100.0
        assert all(a <= b + 1e-9 for a, b in zip(exits, exits[1:]))
        comm = result.column("communication_bytes")
        assert all(a >= b - 1e-9 for a, b in zip(comm, comm[1:]))

    def test_aggregation_table_subset(self, tiny_scale):
        result = experiments.run_aggregation_table(tiny_scale, schemes=("MP-CC", "AP-AP"))
        assert [row["scheme"] for row in result.rows] == ["MP-CC", "AP-AP"]
        for row in result.rows:
            assert 0.0 <= row["local_accuracy_pct"] <= 100.0
            assert 0.0 <= row["cloud_accuracy_pct"] <= 100.0

    def test_communication_reduction(self, tiny_scale):
        result = experiments.run_communication_reduction(tiny_scale, include_cloud_baseline=False)
        (ddnn_row,) = result.rows
        assert ddnn_row["system"] == "ddnn"
        assert ddnn_row["bytes_per_sample"] < 3072
        assert ddnn_row["reduction_factor"] > 1.0

    def test_fault_tolerance_rows(self, tiny_scale):
        individual = {index: 0.5 for index in range(tiny_scale.num_devices)}
        result = experiments.run_fault_tolerance(tiny_scale, individual=individual)
        assert len(result.rows) == tiny_scale.num_devices
        assert [row["failed_device"] for row in result.rows] == list(
            range(1, tiny_scale.num_devices + 1)
        )

    def test_weight_ablation_rows(self, tiny_scale):
        result = experiments.run_weight_ablation(
            tiny_scale, weightings=(("equal", (1.0, 1.0)),)
        )
        assert result.rows[0]["weighting"] == "equal"

    def test_mixed_precision_rows(self, tiny_scale):
        result = experiments.run_mixed_precision(tiny_scale)
        assert [row["cloud_precision"] for row in result.rows] == ["binary", "float"]

    def test_cloud_offloading_rows(self, tiny_scale):
        result = experiments.run_cloud_offloading(tiny_scale, filter_sweep=(1, 2))
        assert [row["device_filters"] for row in result.rows] == [1, 2]
        for row in result.rows:
            assert row["device_memory_bytes"] < 2048
            assert row["communication_bytes"] > 0


class TestOracleCapture:
    def test_capture_oracle_memoizes_per_model_and_dataset(self, tiny_scale):
        _, test_set = experiments.get_dataset(tiny_scale)
        model, _ = experiments.get_trained_ddnn(tiny_scale)
        first = experiments.capture_oracle(model, test_set)
        assert experiments.capture_oracle(model, test_set) is first
        degraded = test_set.with_failed_devices([0])
        assert experiments.capture_oracle(model, degraded) is not first
        experiments.clear_cache()
        assert experiments.capture_oracle(model, test_set) is not first

    def test_capture_oracle_not_stale_after_retraining(self, tiny_scale):
        """In-place retraining must key the model away from its old capture."""
        train_set, test_set = experiments.get_dataset(tiny_scale)
        model, trainer = experiments.get_trained_ddnn(tiny_scale)
        first = experiments.capture_oracle(model, test_set)
        trainer.train_epoch(train_set, epoch=99)
        assert experiments.capture_oracle(model, test_set) is not first

    def test_capture_oracle_never_pins_throwaway_datasets(self, tiny_scale):
        from repro.experiments.runner import _ORACLE_CACHE

        _, test_set = experiments.get_dataset(tiny_scale)
        model, _ = experiments.get_trained_ddnn(tiny_scale)
        before = len(_ORACLE_CACHE)
        degraded = test_set.with_failed_devices([0])
        experiments.capture_oracle(model, degraded)
        experiments.capture_oracle(model, degraded)
        assert len(_ORACLE_CACHE) == before
