"""Tests for the online serving subsystem (queue, batcher, server, stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StagedInferenceEngine
from repro.serving import (
    BatchingPolicy,
    DDNNServer,
    MicroBatcher,
    RequestQueue,
    ServerStats,
)
from repro.serving.queue import InferenceResponse


class FakeClock:
    """Deterministic, manually-advanced time source."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _views(num_devices: int = 2, size: int = 4) -> np.ndarray:
    return np.zeros((num_devices, 3, size, size))


class TestRequestQueue:
    def test_fifo_order_and_ids(self):
        queue = RequestQueue(clock=FakeClock())
        first = queue.submit(_views(), client_id="a")
        second = queue.submit(_views(), client_id="b")
        assert (first.request_id, second.request_id) == (0, 1)
        batch = queue.pop_batch(5)
        assert [request.request_id for request in batch] == [0, 1]
        assert len(queue) == 0

    def test_sessions_track_submissions(self):
        queue = RequestQueue(clock=FakeClock())
        queue.submit(_views(), client_id="a")
        queue.submit(_views(), client_id="a")
        queue.submit(_views(), client_id="b")
        assert queue.session("a").submitted == 2
        assert queue.session("b").submitted == 1
        assert queue.session("a").in_flight == 2

    def test_bad_views_shape_rejected(self):
        queue = RequestQueue(clock=FakeClock())
        with pytest.raises(ValueError):
            queue.submit(np.zeros((3, 4, 4)))

    def test_oldest_wait_tracks_clock(self):
        clock = FakeClock()
        queue = RequestQueue(clock=clock)
        assert queue.oldest_wait_s() == 0.0
        queue.submit(_views())
        clock.advance(0.25)
        assert queue.oldest_wait_s() == pytest.approx(0.25)

    def test_pop_batch_validates_size(self):
        queue = RequestQueue(clock=FakeClock())
        with pytest.raises(ValueError):
            queue.pop_batch(0)

    def test_pop_batch_larger_than_backlog_drains_everything(self):
        queue = RequestQueue(clock=FakeClock())
        for _ in range(3):
            queue.submit(_views())
        assert len(queue.pop_batch(100)) == 3
        assert queue.pop_batch(100) == []
        assert queue.peek_oldest() is None

    def test_oldest_wait_with_explicit_now_and_after_pop(self):
        clock = FakeClock()
        queue = RequestQueue(clock=clock)
        queue.submit(_views())
        clock.advance(1.0)
        queue.submit(_views())
        assert queue.oldest_wait_s(now=1.5) == pytest.approx(1.5)
        queue.pop_batch(1)
        # Head-of-line is now the second request, enqueued at t=1.0.
        assert queue.oldest_wait_s(now=1.5) == pytest.approx(0.5)
        queue.pop_batch(1)
        assert queue.oldest_wait_s(now=99.0) == 0.0


class TestMicroBatcher:
    def test_full_batch_releases_immediately(self):
        clock = FakeClock()
        queue = RequestQueue(clock=clock)
        batcher = MicroBatcher(queue, BatchingPolicy(max_batch_size=2, max_wait_s=10.0), clock)
        queue.submit(_views())
        assert not batcher.ready()
        queue.submit(_views())
        assert batcher.ready()
        assert len(batcher.next_batch()) == 2

    def test_partial_batch_waits_for_max_wait(self):
        clock = FakeClock()
        queue = RequestQueue(clock=clock)
        batcher = MicroBatcher(queue, BatchingPolicy(max_batch_size=8, max_wait_s=0.5), clock)
        queue.submit(_views())
        assert batcher.next_batch() == []
        clock.advance(0.6)
        batch = batcher.next_batch()
        assert len(batch) == 1
        assert batcher.batches_formed == 1

    def test_force_drains_regardless_of_policy(self):
        clock = FakeClock()
        queue = RequestQueue(clock=clock)
        batcher = MicroBatcher(queue, BatchingPolicy(max_batch_size=8, max_wait_s=60.0), clock)
        queue.submit(_views())
        assert len(batcher.next_batch(force=True)) == 1

    def test_batch_never_exceeds_max_size(self):
        clock = FakeClock()
        queue = RequestQueue(clock=clock)
        batcher = MicroBatcher(queue, BatchingPolicy(max_batch_size=3, max_wait_s=0.0), clock)
        for _ in range(7):
            queue.submit(_views())
        sizes = []
        while len(queue):
            sizes.append(len(batcher.next_batch(force=True)))
        assert sizes == [3, 3, 1]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_s=-1.0)
        assert BatchingPolicy.sequential().max_batch_size == 1


class TestServerStats:
    def _response(self, enqueue, complete, exit_name="local", correct=True):
        return InferenceResponse(
            request_id=0,
            client_id="c",
            prediction=1,
            exit_index=0,
            exit_name=exit_name,
            entropy=0.1,
            target=1 if correct else 0,
            enqueue_time=enqueue,
            completion_time=complete,
        )

    def test_empty_snapshot(self):
        snapshot = ServerStats().snapshot()
        assert snapshot.window_requests == 0
        assert snapshot.throughput_rps == 0.0
        assert snapshot.accuracy is None

    def test_snapshot_aggregates(self):
        stats = ServerStats()
        stats.observe_batch([self._response(0.0, 0.1), self._response(0.0, 0.1)])
        stats.observe_batch([self._response(0.1, 0.3, exit_name="cloud", correct=False)])
        snapshot = stats.snapshot()
        assert snapshot.total_requests == 3
        assert snapshot.total_batches == 2
        assert snapshot.exit_fractions == {"cloud": pytest.approx(1 / 3), "local": pytest.approx(2 / 3)}
        assert snapshot.accuracy == pytest.approx(2 / 3)
        assert snapshot.mean_batch_size == pytest.approx(1.5)
        assert snapshot.throughput_rps > 0

    def test_rolling_window_bounds_memory(self):
        stats = ServerStats(window=4)
        for index in range(10):
            stats.observe_batch([self._response(index * 1.0, index * 1.0 + 0.1)])
        snapshot = stats.snapshot()
        assert snapshot.total_requests == 10
        assert snapshot.window_requests == 4

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ServerStats(window=0)

    def _batch(self, size, complete, enqueue=0.0, **kwargs):
        return [self._response(enqueue, complete, **kwargs) for _ in range(size)]

    def test_throughput_counts_whole_batches_against_elapsed_time(self):
        """Pinned semantics: two 16-deep batches one second apart is 16 rps —
        the old per-response formula reported (32-1)/1 = 31 rps because every
        response in a batch shares one completion stamp."""
        stats = ServerStats()
        stats.observe_batch(self._batch(16, complete=1.0))
        stats.observe_batch(self._batch(16, complete=2.0))
        assert stats.snapshot().throughput_rps == pytest.approx(16.0)

    def test_throughput_needs_two_completion_events(self):
        stats = ServerStats()
        stats.observe_batch(self._batch(32, complete=1.0))
        assert stats.snapshot().throughput_rps == 0.0

    def test_throughput_survives_window_no_larger_than_batch(self):
        """Regression: with window <= batch size, eviction used to leave a
        single completion event, reporting 0.0 rps forever."""
        stats = ServerStats(window=16)
        for index in range(10):
            stats.observe_batch(self._batch(16, complete=1.0 + index))
        assert stats.snapshot().throughput_rps == pytest.approx(16.0)

    def test_throughput_steady_stream_of_single_requests(self):
        stats = ServerStats(window=8)
        for index in range(20):
            stats.observe_batch(self._batch(1, complete=float(index), enqueue=float(index)))
        assert stats.snapshot().throughput_rps == pytest.approx(1.0)

    def test_batch_window_tracks_request_window(self):
        """Pinned semantics: mean_batch_size covers the trailing batches that
        produced the windowed requests — not a separate batch-count window."""
        stats = ServerStats(window=8)
        stats.observe_batch(self._batch(1, complete=0.5))
        for index in range(4):
            stats.observe_batch(self._batch(2, complete=1.0 + index))
        # 9 requests total; the size-1 batch is evicted once the four 2-deep
        # batches cover the 8-request window on their own.
        snapshot = stats.snapshot()
        assert snapshot.window_requests == 8
        assert snapshot.window_batches == 4
        assert snapshot.mean_batch_size == pytest.approx(2.0)

    def test_batch_window_keeps_partially_covered_batch(self):
        stats = ServerStats(window=4)
        stats.observe_batch(self._batch(3, complete=1.0))
        stats.observe_batch(self._batch(3, complete=2.0))
        # Evicting the older batch would leave only 3 < window requests.
        snapshot = stats.snapshot()
        assert snapshot.window_batches == 2
        assert snapshot.mean_batch_size == pytest.approx(3.0)


class TestDDNNServer:
    def test_one_at_a_time_matches_staged_inference(self, trained_ddnn, tiny_test):
        """Satellite acceptance: request-at-a-time serving is byte-identical
        to offline StagedInferenceEngine.run on the same model."""
        offline = StagedInferenceEngine(trained_ddnn, 0.8).run(tiny_test)
        server = DDNNServer(trained_ddnn, 0.8, policy=BatchingPolicy.sequential())
        responses = server.serve_dataset(tiny_test)
        predictions = np.array([response.prediction for response in responses])
        exits = np.array([response.exit_index for response in responses])
        entropies = np.array([response.entropy for response in responses])
        np.testing.assert_array_equal(predictions, offline.predictions)
        np.testing.assert_array_equal(exits, offline.exit_indices)
        np.testing.assert_array_equal(entropies, offline.entropies)

    def test_dynamic_batching_matches_staged_inference(self, trained_ddnn, tiny_test):
        offline = StagedInferenceEngine(trained_ddnn, 0.8).run(tiny_test)
        server = DDNNServer(
            trained_ddnn, 0.8, policy=BatchingPolicy(max_batch_size=8, max_wait_s=0.0)
        )
        responses = server.serve_dataset(tiny_test)
        predictions = np.array([response.prediction for response in responses])
        np.testing.assert_array_equal(predictions, offline.predictions)

    def test_step_respects_policy_then_force_drains(self, trained_ddnn, tiny_test):
        clock = FakeClock()
        server = DDNNServer(
            trained_ddnn,
            0.8,
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=60.0),
            clock=clock,
        )
        server.submit(tiny_test.images[0])
        assert server.step() == []  # neither trigger fired
        clock.advance(61.0)
        assert len(server.step()) == 1  # max_wait trigger
        server.submit(tiny_test.images[1])
        assert len(server.step(force=True)) == 1

    def test_responses_routed_per_exit(self, trained_ddnn, tiny_test):
        server = DDNNServer(trained_ddnn, 0.8)
        responses = server.serve_dataset(tiny_test)
        by_exit = {name: server.responses_for_exit(name) for name in server.exit_names}
        assert sum(len(bucket) for bucket in by_exit.values()) == len(responses)
        for name, bucket in by_exit.items():
            assert all(response.exit_name == name for response in bucket)
        with pytest.raises(KeyError):
            server.responses_for_exit("nope")

    def test_sessions_receive_their_responses(self, trained_ddnn, tiny_test):
        server = DDNNServer(trained_ddnn, 0.8)
        server.submit(tiny_test.images[0], client_id="a")
        server.submit(tiny_test.images[1], client_id="b")
        server.submit(tiny_test.images[2], client_id="a")
        server.run_until_drained()
        assert server.queue.session("a").completed == 2
        assert server.queue.session("b").completed == 1
        assert all(r.client_id == "a" for r in server.queue.session("a").responses)

    def test_snapshot_reflects_traffic(self, trained_ddnn, tiny_test):
        server = DDNNServer(trained_ddnn, 0.8)
        server.serve_dataset(tiny_test)
        snapshot = server.snapshot()
        assert snapshot.total_requests == len(tiny_test)
        assert sum(snapshot.exit_fractions.values()) == pytest.approx(1.0)
        assert snapshot.accuracy is not None
        assert snapshot.mean_latency_s >= 0.0

    def test_serve_dataset_ignores_preexisting_backlog(self, trained_ddnn, tiny_test):
        """Regression: a backlog from other clients must not leak into the
        dataset response list (which is documented to line up with
        ``dataset.labels``)."""
        server = DDNNServer(trained_ddnn, 0.8)
        for index in range(3):
            server.submit(tiny_test.images[index], client_id="backlog")
        responses = server.serve_dataset(tiny_test, client_id="dataset")
        assert len(responses) == len(tiny_test)
        assert all(response.client_id == "dataset" for response in responses)
        assert [response.target for response in responses] == [
            int(label) for label in tiny_test.labels
        ]
        # The backlog was still served, to its own session.
        assert server.queue.session("backlog").completed == 3
        # ... and the filtered responses match a clean-server run exactly.
        clean = DDNNServer(trained_ddnn, 0.8).serve_dataset(tiny_test)
        assert [r.prediction for r in responses] == [r.prediction for r in clean]
        assert [r.exit_index for r in responses] == [r.exit_index for r in clean]

    def test_retention_bounds_sessions_and_outboxes(self, trained_ddnn, tiny_test):
        """Regression: long-lived servers must not grow memory without bound
        in ClientSession.responses / per-exit outboxes; counters stay exact."""
        server = DDNNServer(trained_ddnn, 0.8, stats_window=64, retention=5)
        repeats = 3
        for _ in range(repeats):
            for index in range(len(tiny_test)):
                server.submit(tiny_test.images[index], client_id="cam")
            server.run_until_drained()
        session = server.queue.session("cam")
        assert session.submitted == session.completed == repeats * len(tiny_test)
        assert len(session.responses) == 5
        total_boxed = sum(
            len(server.responses_for_exit(name)) for name in server.exit_names
        )
        assert total_boxed <= 5 * len(server.exit_names)
        assert server.snapshot().total_requests == repeats * len(tiny_test)

    def test_retention_defaults_to_stats_window(self, trained_ddnn):
        server = DDNNServer(trained_ddnn, 0.8, stats_window=7)
        assert server.retention == 7
        assert server.queue.retention == 7

    @pytest.mark.parametrize("policy_name", ["reject", "drop-oldest", "shed-local"])
    def test_serve_dataset_on_bounded_queue_serves_every_sample(
        self, trained_ddnn, tiny_test, policy_name
    ):
        """Regression: with capacity < len(dataset), serve_dataset used to
        raise mid-submit (reject/shed) or silently return a short,
        label-misaligned list (drop-oldest)."""
        from repro.serving import admission_policy

        server = DDNNServer(
            trained_ddnn,
            0.8,
            capacity=8,
            admission=admission_policy(policy_name),
        )
        responses = server.serve_dataset(tiny_test)
        assert len(responses) == len(tiny_test)
        assert [r.target for r in responses] == [int(l) for l in tiny_test.labels]
        # Every sample got the full cascade, never a degraded shed answer.
        assert not any(r.shed for r in responses)
        stats = server.queue.admission_stats
        assert stats.rejected == stats.dropped == stats.shed == 0
        # ... and predictions match the unbounded server exactly.
        clean = DDNNServer(trained_ddnn, 0.8).serve_dataset(tiny_test)
        assert [r.prediction for r in responses] == [r.prediction for r in clean]

    def test_submit_with_shed_policy_answers_from_local_exit(self, trained_ddnn, tiny_test):
        """server.submit() under shed-local must deliver the promised
        local-exit answer instead of raising with a phantom shed count."""
        from repro.serving import ShedToLocalExit

        server = DDNNServer(
            trained_ddnn, 0.8, capacity=2, admission=ShedToLocalExit()
        )
        ids = [
            server.submit(tiny_test.images[index], client_id="cam")
            for index in range(3)
        ]
        session = server.queue.session("cam")
        assert session.shed == 1
        assert len(session.responses) == 1
        shed_response = session.responses[0]
        assert shed_response.shed and shed_response.request_id == ids[2]
        assert shed_response.exit_index == 0
        server.run_until_drained()
        assert session.completed == 2  # shed answers never count as completed
