"""Equivalence suite for the forward-once evaluation plane (``ExitOracle``).

The oracle's contract is that it is a pure optimisation: every quantity it
answers from its logit cache — routing, sweeps, accuracy reports, exit-rate
calibration — must equal what the per-threshold
:class:`~repro.core.inference.StagedInferenceEngine` / grid-search code
computed with repeated forwards.  Routing equality is *byte*-equality
(predictions, exit indices and entropies), across broadcast and per-exit
thresholds, degraded (failed-device) datasets and three-exit edge
topologies.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.compile.cache import cached_plan_count, compiled_plan_for, invalidate_plan
from repro.core import (
    DDNNConfig,
    DDNNTopology,
    DDNNTrainer,
    ExitCascade,
    ExitOracle,
    StagedInferenceEngine,
    TrainingConfig,
    build_ddnn,
    evaluate_exit_accuracies,
    evaluate_overall,
    full_accuracy_report,
    search_threshold,
    threshold_for_exit_rate,
)

#: The paper's Table II grid plus the 21-point calibration grid used by the
#: Figure 9 exit-rate search.
TABLE2_GRID = (0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
CALIBRATION_GRID = tuple(np.round(np.arange(0.0, 1.0001, 0.05), 4))


def assert_routing_identical(engine_result, oracle_result):
    np.testing.assert_array_equal(engine_result.predictions, oracle_result.predictions)
    np.testing.assert_array_equal(engine_result.exit_indices, oracle_result.exit_indices)
    np.testing.assert_array_equal(engine_result.entropies, oracle_result.entropies)
    assert engine_result.exit_names == oracle_result.exit_names
    for name in engine_result.exit_names:
        np.testing.assert_array_equal(
            engine_result.exit_predictions[name], oracle_result.exit_predictions[name]
        )


class TestRouteByteIdentity:
    @pytest.mark.parametrize("compile", [False, True], ids=["eager", "compiled"])
    def test_route_matches_engine_across_both_grids(self, trained_ddnn, tiny_test, compile):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=compile)
        for threshold in set(TABLE2_GRID) | set(CALIBRATION_GRID):
            engine = StagedInferenceEngine(trained_ddnn, float(threshold), compile=compile)
            assert_routing_identical(engine.run(tiny_test), oracle.route(float(threshold)))

    @pytest.mark.parametrize("compile", [False, True], ids=["eager", "compiled"])
    def test_route_matches_engine_on_failed_device_sets(self, trained_ddnn, tiny_test, compile):
        for failed in ([0], [1, 3]):
            degraded = tiny_test.with_failed_devices(failed)
            oracle = ExitOracle.capture(trained_ddnn, degraded, compile=compile)
            for threshold in TABLE2_GRID:
                engine = StagedInferenceEngine(trained_ddnn, float(threshold), compile=compile)
                assert_routing_identical(engine.run(degraded), oracle.route(float(threshold)))

    def test_route_matches_engine_per_exit_thresholds(self, trained_ddnn, tiny_test):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        for thresholds in ([0.3, 0.9], [0.9, 0.1], [0.0, 0.0]):
            engine = StagedInferenceEngine(trained_ddnn, thresholds)
            assert_routing_identical(engine.run(tiny_test), oracle.route(thresholds))

    def test_route_matches_engine_on_edge_topology(self, tiny_train, tiny_test):
        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
            seed=5,
        )
        model = build_ddnn(config)
        DDNNTrainer(model, TrainingConfig(epochs=2, batch_size=32, seed=0)).fit(tiny_train)
        oracle = ExitOracle.capture(model, tiny_test, compile=False)
        assert oracle.exit_names == ["local", "edge", "cloud"]
        for thresholds in (0.8, [0.5, 0.7], [0.9, 0.2, 0.4]):
            engine = StagedInferenceEngine(model, thresholds)
            assert_routing_identical(engine.run(tiny_test), oracle.route(thresholds))

    def test_route_results_are_isolated_from_the_cache(self, trained_ddnn, tiny_test):
        """Mutating a returned result must not corrupt later oracle answers."""
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        expected_accuracies = oracle.exit_accuracies()
        first = oracle.route(0.8)
        expected = first.exit_predictions["local"].copy()
        first.exit_predictions["local"][:] = -1
        first.targets[:] = -1
        np.testing.assert_array_equal(
            oracle.route(0.8).exit_predictions["local"], expected
        )
        assert oracle.exit_accuracies() == expected_accuracies

    def test_batch_size_chunks_match_engine_batching(self, trained_ddnn, tiny_test):
        """Capture must chunk like the engine so logits are byte-identical."""
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, batch_size=5, compile=False)
        engine = StagedInferenceEngine(trained_ddnn, 0.8, batch_size=5)
        assert_routing_identical(engine.run(tiny_test), oracle.route(0.8))

    def test_route_rejects_bad_thresholds(self, trained_ddnn, tiny_test):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        for bad in (float("nan"), -0.1, True, 1.5, 80):
            with pytest.raises(ValueError):
                oracle.route(bad)
        with pytest.raises(ValueError):
            oracle.sweep([0.5, 1.5])
        # A final-exit threshold above 1.0 is forced to 1.0, like the engine.
        oracle.route([0.5, 5.0])

    def test_helpers_reject_out_of_range_like_engine(self, trained_ddnn, tiny_test):
        """The oracle rewiring must not widen the engine's validation."""
        with pytest.raises(ValueError):
            evaluate_overall(trained_ddnn, tiny_test, 1.5)
        with pytest.raises(ValueError):
            search_threshold(trained_ddnn, tiny_test, grid=(0.5, 80.0))


class TestSweepAndReports:
    def test_sweep_equals_per_threshold_engine_loop(self, trained_ddnn, tiny_test):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        table = oracle.sweep(CALIBRATION_GRID)
        assert len(table) == len(CALIBRATION_GRID)
        for point in table.points():
            engine = StagedInferenceEngine(trained_ddnn, point.threshold)
            run = engine.run(tiny_test)
            assert point.local_exit_fraction == run.local_exit_fraction
            assert point.overall_accuracy == run.overall_accuracy(tiny_test.labels)
            assert point.communication_bytes == engine.communication_bytes(run)
            assert oracle.communication_bytes(run) == engine.communication_bytes(run)

    def test_exit_accuracies_match_legacy_loop(self, trained_ddnn, tiny_test):
        """The logit-argmax convention of the historical eager loop holds."""
        from repro.nn.tensor import no_grad

        # The pre-oracle evaluate_exit_accuracies, verbatim.
        trained_ddnn.eval()
        correct = {name: 0 for name in trained_ddnn.exit_names}
        total = 0
        with no_grad():
            for start in range(0, len(tiny_test), 64):
                views = tiny_test.images[start : start + 64]
                targets = tiny_test.labels[start : start + 64]
                output = trained_ddnn(views)
                total += len(targets)
                for name, logits in zip(output.exit_names, output.exit_logits):
                    correct[name] += int(np.sum(logits.data.argmax(axis=1) == targets))
        legacy = {name: correct[name] / total for name in trained_ddnn.exit_names}

        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        assert oracle.exit_accuracies() == legacy
        assert evaluate_exit_accuracies(trained_ddnn, tiny_test) == legacy

    def test_accuracy_helpers_use_one_capture(self, trained_ddnn, tiny_test):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        direct = evaluate_overall(trained_ddnn, tiny_test, 0.8)
        via_oracle = evaluate_overall(trained_ddnn, tiny_test, 0.8, oracle=oracle)
        assert direct.overall_accuracy == via_oracle.overall_accuracy
        assert direct.exit_accuracy == via_oracle.exit_accuracy
        assert direct.communication_bytes == via_oracle.communication_bytes

        report = full_accuracy_report(
            trained_ddnn, tiny_test, 0.8, individual_accuracy={0: 0.5}, oracle=oracle
        )
        assert report.individual_accuracy == {0: 0.5}
        assert report.overall_accuracy == direct.overall_accuracy

    def test_trainer_evaluate_exits_delegates(self, trained_ddnn, tiny_test, tiny_config):
        trainer = DDNNTrainer(trained_ddnn)
        assert trainer.evaluate_exits(tiny_test) == evaluate_exit_accuracies(
            trained_ddnn, tiny_test
        )

    def test_compiled_capture_same_routing_as_eager(self, trained_ddnn, tiny_test):
        """Compiled logits are allclose, routing decisions identical."""
        eager = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        fast = ExitOracle.capture(trained_ddnn, tiny_test, compile=True)
        for threshold in TABLE2_GRID:
            np.testing.assert_array_equal(
                eager.route(threshold).exit_indices, fast.route(threshold).exit_indices
            )
            np.testing.assert_array_equal(
                eager.route(threshold).predictions, fast.route(threshold).predictions
            )
        np.testing.assert_allclose(eager.logits, fast.logits, rtol=1e-5, atol=1e-6)


class TestQuantileCalibration:
    def test_cdf_matches_routed_exit_fractions(self, trained_ddnn, tiny_test):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        fractions = oracle.exit_rate_cdf(CALIBRATION_GRID)
        for threshold, fraction in zip(CALIBRATION_GRID, fractions):
            assert fraction == oracle.route(float(threshold)).local_exit_fraction

    def test_grid_selection_matches_legacy_grid_search(self, trained_ddnn, tiny_test):
        """Oracle-backed search reproduces the engine-per-point grid search."""

        def legacy_threshold_for_exit_rate(model, dataset, target, grid):
            candidates = []
            for threshold in grid:
                engine = StagedInferenceEngine(model, float(threshold))
                run = engine.run(dataset)
                candidates.append(
                    (
                        float(threshold),
                        run.overall_accuracy(dataset.labels),
                        run.local_exit_fraction,
                    )
                )
            best = min(candidates, key=lambda c: (abs(c[2] - target), -c[1]))
            return best[0]

        for target in (0.25, 0.5, 0.75):
            fast = threshold_for_exit_rate(trained_ddnn, tiny_test, target)
            slow = legacy_threshold_for_exit_rate(
                trained_ddnn, tiny_test, target, CALIBRATION_GRID
            )
            assert fast.best_threshold == slow
            assert len(fast.candidates) == len(CALIBRATION_GRID)

    def test_search_threshold_matches_legacy_sweep(self, trained_ddnn, tiny_test):
        result = search_threshold(trained_ddnn, tiny_test, grid=TABLE2_GRID)
        best_engine = None
        for threshold in TABLE2_GRID:
            run = StagedInferenceEngine(trained_ddnn, float(threshold)).run(tiny_test)
            key = (run.overall_accuracy(tiny_test.labels), run.local_exit_fraction)
            if best_engine is None or key > best_engine[0]:
                best_engine = (key, float(threshold))
        assert result.best_threshold == best_engine[1]

    def test_exact_quantile_threshold_hits_closest_achievable_rate(
        self, trained_ddnn, tiny_test
    ):
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        # Rates achievable by a *valid* threshold (entropies clip to 1.0).
        valid_thresholds = np.minimum(np.sort(oracle.entropies[0]), 1.0)
        achievable = np.unique(
            np.concatenate(([0.0], oracle.exit_rate_cdf(valid_thresholds)))
        )
        for target in (0.0, 0.3, 0.5, 0.9, 1.0):
            threshold = oracle.quantile_threshold(target)
            assert 0.0 <= threshold <= 1.0
            achieved = float(oracle.exit_rate_cdf(threshold)[0])
            # No achievable exit rate is closer to the target.
            assert abs(achieved - target) == np.min(np.abs(achievable - target))
            # And the routed cascade agrees with the CDF.
            assert oracle.route(threshold).local_exit_fraction == achieved

    def test_quantile_threshold_always_routable_on_uniform_logits(self):
        """Entropies overshoot 1.0 by ulps on uniform softmax; the returned
        threshold must still be valid for route()/sweep()."""
        oracle = ExitOracle(
            np.zeros((2, 6, 3)), ["local", "cloud"], targets=np.zeros(6, dtype=np.int64)
        )
        for target in (0.5, 1.0):
            threshold = oracle.quantile_threshold(target)
            assert 0.0 <= threshold <= 1.0
            oracle.route(threshold)
            oracle.sweep([threshold])

    def test_exact_mode_returns_single_candidate(self, trained_ddnn, tiny_test):
        result = threshold_for_exit_rate(trained_ddnn, tiny_test, 0.5, exact=True)
        assert len(result.candidates) == 1
        assert result.best.threshold == result.best_threshold
        assert 0.0 <= result.best.local_exit_fraction <= 1.0

    def test_target_fraction_validated(self, trained_ddnn, tiny_test):
        with pytest.raises(ValueError):
            threshold_for_exit_rate(trained_ddnn, tiny_test, 1.5)
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, compile=False)
        with pytest.raises(ValueError):
            oracle.quantile_threshold(-0.1)


class TestPlanCache:
    def test_cascades_share_one_plan(self, trained_ddnn):
        invalidate_plan()
        first = ExitCascade.for_model(trained_ddnn, 0.8, compile=True)
        second = ExitCascade.for_model(trained_ddnn, 0.5, compile=True)
        plan_a = first.compiled_for(trained_ddnn)
        plan_b = second.compiled_for(trained_ddnn)
        assert plan_a is plan_b
        assert plan_a is compiled_plan_for(trained_ddnn)

    def test_invalidate_one_model(self, trained_ddnn):
        invalidate_plan()
        plan = compiled_plan_for(trained_ddnn)
        invalidate_plan(trained_ddnn)
        assert compiled_plan_for(trained_ddnn) is not plan

    def test_cascade_invalidate_leaves_other_models_cached(self, trained_ddnn, tiny_config):
        """A cascade's no-arg invalidate only evicts models it served."""
        invalidate_plan()
        other = build_ddnn(tiny_config)
        other_plan = compiled_plan_for(other)
        cascade = ExitCascade.for_model(trained_ddnn, 0.8, compile=True)
        own_plan = cascade.compiled_for(trained_ddnn)
        cascade.invalidate_compiled()
        assert compiled_plan_for(other) is other_plan
        assert compiled_plan_for(trained_ddnn) is not own_plan

    def test_cache_evicts_on_model_gc(self, tiny_config):
        invalidate_plan()
        model = build_ddnn(tiny_config)
        compiled_plan_for(model)
        assert cached_plan_count() == 1
        del model
        gc.collect()
        assert cached_plan_count() == 0

    def test_engine_and_oracle_share_the_plan(self, trained_ddnn, tiny_test):
        invalidate_plan()
        ExitOracle.capture(trained_ddnn, tiny_test, compile=True)
        assert cached_plan_count() == 1
        StagedInferenceEngine(trained_ddnn, 0.8, compile=True).run(tiny_test)
        assert cached_plan_count() == 1

    def test_training_evicts_stale_plan(self, tiny_config, tiny_train):
        """fit() mutates weights in place — the cached plan must not survive."""
        invalidate_plan()
        model = build_ddnn(tiny_config)
        trainer = DDNNTrainer(model, TrainingConfig(epochs=1, batch_size=32, seed=0))
        trainer.fit(tiny_train)
        stale = compiled_plan_for(model)
        trainer.fit(tiny_train)
        assert compiled_plan_for(model) is not stale


class TestOracleConstruction:
    def test_synthetic_logits(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(2, 10, 3))
        targets = rng.integers(0, 3, size=10)
        oracle = ExitOracle(logits, ["local", "cloud"], targets=targets)
        result = oracle.route(0.5)
        assert result.predictions.shape == (10,)
        assert set(np.unique(result.exit_indices)) <= {0, 1}
        table = oracle.sweep([0.0, 1.0])
        assert table.local_exit_fraction[0] <= table.local_exit_fraction[1]
        assert table.communication_bytes is None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ExitOracle(np.zeros((3, 4)), ["local", "cloud"])
        with pytest.raises(ValueError):
            ExitOracle(np.zeros((1, 4, 3)), ["local", "cloud"])

    def test_missing_targets_raise(self):
        oracle = ExitOracle(np.zeros((2, 4, 3)), ["local", "cloud"])
        with pytest.raises(ValueError):
            oracle.exit_accuracies()
        with pytest.raises(ValueError):
            oracle.sweep([0.5])
        with pytest.raises(ValueError):
            oracle.communication_bytes(oracle.route(0.5))
