"""Tests for the real thread-pool worker backend behind the serving fabric.

Covers the wall clock and realtime event loop, the worker-pool backends'
routing equivalence (thread vs simulated, server and fabric, several worker
counts), the constructor validation around backend/compile/clock choices,
and thread-safety of the process-wide compiled-plan cache and the
experiment harness's oracle memo under concurrent hammering.

Equivalence is asserted on predictions and exit indices byte-for-byte;
entropy floats are compared with a tight tolerance instead, because real
arrival timing changes which requests share an upper-tier batch and BLAS
kernels pick shape-dependent summation orders — per-row logits wobble by a
few ULPs across batch compositions without ever moving a decision.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.compile.cache import cached_plan_count, compiled_plan_for, invalidate_plan
from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.experiments import capture_oracle, ci_scale, get_dataset
from repro.hierarchy import partition_ddnn
from repro.serving import (
    BatchingPolicy,
    DDNNServer,
    DistributedServingFabric,
    EventLoop,
    SimulatedClock,
    SimulatedWorkerPool,
    ThreadPoolWorkerPool,
    WallClock,
    make_worker_pool,
)


def _routing(responses):
    responses = sorted(responses, key=lambda r: r.request_id)
    return (
        np.array([r.prediction for r in responses]),
        np.array([r.exit_index for r in responses]),
        np.array([r.entropy for r in responses]),
    )


class TestWallClock:
    def test_now_tracks_real_time(self):
        clock = WallClock()
        first = clock.now
        time.sleep(0.01)
        assert clock.now > first
        assert clock() >= clock.now or clock() > first  # callable alias

    def test_advance_to_is_a_no_op(self):
        clock = WallClock()
        clock.advance_to(clock.now + 1e6)
        assert clock.now < 1e6


class TestRealtimeEventLoop:
    def test_waits_for_due_time_and_fires_in_order(self):
        loop = EventLoop(WallClock())
        fired = []
        start = loop.clock.now
        loop.schedule(start + 0.03, lambda t: fired.append(("b", t)))
        loop.schedule(start + 0.01, lambda t: fired.append(("a", t)))
        loop.run()
        assert [name for name, _ in fired] == ["a", "b"]
        # The loop really waited for the due times instead of warping.
        assert fired[-1][1] - start >= 0.03 - 1e-3

    def test_inflight_keeps_loop_alive_until_completion_posted(self):
        loop = EventLoop(WallClock())
        fired = []
        loop.begin_inflight()

        def worker():
            time.sleep(0.03)
            loop.post(lambda t: fired.append(t))
            loop.end_inflight()

        thread = threading.Thread(target=worker)
        thread.start()
        loop.run()  # must not return before the posted completion fires
        thread.join()
        assert len(fired) == 1

    def test_unmatched_end_inflight_raises(self):
        loop = EventLoop(WallClock())
        with pytest.raises(RuntimeError):
            loop.end_inflight()


class TestWorkerPoolFactory:
    def test_backends(self):
        events = EventLoop()
        pool = make_worker_pool("simulated", events, 2, None, name="dev")
        assert isinstance(pool, SimulatedWorkerPool)
        assert len(pool.workers) == 2
        realtime = EventLoop(WallClock())
        thread_pool = make_worker_pool(
            "thread", realtime, 2, [object(), object()], name="dev"
        )
        try:
            assert isinstance(thread_pool, ThreadPoolWorkerPool)
        finally:
            thread_pool.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            make_worker_pool("fork", EventLoop(), 1, None, name="dev")


class TestThreadBackendEquivalence:
    @pytest.fixture(scope="class")
    def reference(self, trained_ddnn, tiny_test):
        """Simulated compiled fabric routing — the deterministic baseline."""
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            workers_per_tier=2,
            batching=BatchingPolicy(max_batch_size=4),
            compile=True,
        )
        with fabric:
            return _routing(fabric.serve_dataset(tiny_test))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fabric_thread_backend_matches_simulated(
        self, trained_ddnn, tiny_test, reference, workers
    ):
        fabric = DistributedServingFabric(
            partition_ddnn(trained_ddnn),
            0.8,
            workers_per_tier=workers,
            batching=BatchingPolicy(max_batch_size=4),
            compile=True,
            backend="thread",
        )
        with fabric:
            predictions, exits, entropies = _routing(fabric.serve_dataset(tiny_test))
        ref_predictions, ref_exits, ref_entropies = reference
        np.testing.assert_array_equal(predictions, ref_predictions)
        np.testing.assert_array_equal(exits, ref_exits)
        np.testing.assert_allclose(entropies, ref_entropies, rtol=0, atol=1e-9)

    def test_server_thread_backend_matches_sequential(self, trained_ddnn, tiny_test):
        with DDNNServer(trained_ddnn, 0.8, compile=True) as sequential:
            ref = _routing(sequential.serve_dataset(tiny_test))
        with DDNNServer(
            trained_ddnn, 0.8, compile=True, workers=3, backend="thread"
        ) as server:
            got = _routing(server.serve_dataset(tiny_test))
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])
        np.testing.assert_allclose(got[2], ref[2], rtol=0, atol=1e-9)


class TestBackendValidation:
    def test_fabric_thread_requires_compile(self, trained_ddnn):
        with pytest.raises(ValueError, match="compile"):
            DistributedServingFabric(
                partition_ddnn(trained_ddnn), 0.8, backend="thread"
            )

    def test_fabric_thread_rejects_simulated_clock(self, trained_ddnn):
        with pytest.raises(ValueError, match="clock"):
            DistributedServingFabric(
                partition_ddnn(trained_ddnn),
                0.8,
                compile=True,
                backend="thread",
                clock=SimulatedClock(),
            )

    def test_fabric_unknown_backend(self, trained_ddnn):
        with pytest.raises(ValueError, match="backend"):
            DistributedServingFabric(
                partition_ddnn(trained_ddnn), 0.8, backend="multiprocess"
            )

    def test_server_multiworker_requires_thread_backend(self, trained_ddnn):
        with pytest.raises(ValueError, match="thread"):
            DDNNServer(trained_ddnn, 0.8, compile=True, workers=2)

    def test_server_thread_requires_compile(self, trained_ddnn):
        with pytest.raises(ValueError, match="compile"):
            DDNNServer(trained_ddnn, 0.8, workers=2, backend="thread")

    def test_server_worker_count_positive(self, trained_ddnn):
        with pytest.raises(ValueError, match="workers"):
            DDNNServer(trained_ddnn, 0.8, compile=True, workers=0, backend="thread")


class TestPlanCacheConcurrency:
    def test_threads_hammering_cache_during_invalidation(
        self, untrained_ddnn, tiny_train, tiny_test
    ):
        """N reader threads fetch and run compiled plans while the trainer
        invalidates the cache entry after every epoch — no torn cache state,
        no crash, and a fresh plan afterwards routes like a clean compile."""
        model = untrained_ddnn
        model.eval()
        views = np.stack(tiny_test.images[:2])
        errors = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    plan = compiled_plan_for(model)
                    plan(views)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        try:
            trainer = DDNNTrainer(model, TrainingConfig(epochs=1, batch_size=32, seed=0))
            for epoch in range(3):
                trainer.train_epoch(tiny_train, epoch=epoch)
                model.eval()
                invalidate_plan(model)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors, f"cache raced: {errors[:1]!r}"

        invalidate_plan(model)
        before = cached_plan_count()
        fresh = compiled_plan_for(model)
        assert compiled_plan_for(model) is fresh  # memoized again
        assert cached_plan_count() == before + 1
        routed_fresh = fresh(views)
        routed_again = compiled_plan_for(model)(views)
        for got, want in zip(routed_again.exit_logits, routed_fresh.exit_logits):
            np.testing.assert_array_equal(got, want)

    def test_concurrent_first_compile_returns_one_plan(self, trained_ddnn):
        """A compile stampede must converge on a single cached plan."""
        invalidate_plan(trained_ddnn)
        plans = [None] * 8
        barrier = threading.Barrier(len(plans))

        def fetch(index):
            barrier.wait()
            plans[index] = compiled_plan_for(trained_ddnn)

        threads = [
            threading.Thread(target=fetch, args=(index,)) for index in range(len(plans))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(plan is not None for plan in plans)
        # Every later lookup agrees with the cache winner.
        winner = compiled_plan_for(trained_ddnn)
        assert sum(1 for plan in plans if plan is winner) >= 1


class TestOracleMemoConcurrency:
    def test_concurrent_capture_oracle_consistent(self):
        scale = ci_scale()
        _, test_set = get_dataset(scale)
        model = build_ddnn(scale.ddnn_config())
        model.eval()
        oracles = [None] * 6
        barrier = threading.Barrier(len(oracles))

        def capture(index):
            barrier.wait()
            oracles[index] = capture_oracle(model, test_set)

        threads = [
            threading.Thread(target=capture, args=(index,))
            for index in range(len(oracles))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(oracle is not None for oracle in oracles)
        # All captures of the same (model, dataset) agree bit-for-bit ...
        for oracle in oracles[1:]:
            np.testing.assert_array_equal(oracle.logits, oracles[0].logits)
            np.testing.assert_array_equal(oracle.predictions, oracles[0].predictions)
        # ... and once the memo is warm, lookups return the cached object.
        warm = capture_oracle(model, test_set)
        assert capture_oracle(model, test_set) is warm
