"""Tests for overload safety: admission control, QoS weights, load generation."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.serving import (
    AdmissionOutcome,
    BatchingPolicy,
    BurstyProcess,
    DDNNServer,
    DropOldest,
    LoadGenerator,
    PoissonProcess,
    QueueFullError,
    RejectNewest,
    RequestQueue,
    ServiceModel,
    ShedToLocalExit,
    SimulatedClock,
    TraceReplay,
    admission_policy,
)


def _views(num_devices: int = 2, size: int = 4) -> np.ndarray:
    return np.zeros((num_devices, 3, size, size))


class TestAdmissionPolicies:
    def _full_queue(self, admission, capacity=2):
        queue = RequestQueue(clock=SimulatedClock(), capacity=capacity, admission=admission)
        for index in range(capacity):
            queue.submit(_views(), client_id=f"seed-{index}")
        return queue

    def test_unbounded_queue_never_consults_admission(self):
        class Exploding(RejectNewest):
            def decide(self, queue, client_id):  # pragma: no cover - must not run
                raise AssertionError("admission consulted on an unbounded queue")

        queue = RequestQueue(clock=SimulatedClock(), admission=Exploding())
        for _ in range(100):
            queue.submit(_views())
        assert len(queue) == 100

    def test_reject_newest_refuses_and_counts(self):
        queue = self._full_queue(RejectNewest())
        result = queue.offer(_views(), client_id="late")
        assert result.outcome is AdmissionOutcome.REJECTED
        assert result.request is None
        assert len(queue) == 2
        assert queue.admission_stats.rejected == 1
        assert queue.session("late").rejected == 1
        assert queue.admission_stats.offered == 3

    def test_submit_raises_on_rejection(self):
        queue = self._full_queue(RejectNewest())
        with pytest.raises(QueueFullError):
            queue.submit(_views(), client_id="late")

    def test_drop_oldest_evicts_head_and_accepts(self):
        queue = self._full_queue(DropOldest())
        head = queue.peek_oldest()
        result = queue.offer(_views(), client_id="late")
        assert result.outcome is AdmissionOutcome.ACCEPTED
        assert result.evicted is head
        assert len(queue) == 2
        assert queue.admission_stats.dropped == 1
        assert queue.session(head.client_id).dropped == 1
        # The evicted request no longer counts as in flight for its client.
        assert queue.session(head.client_id).in_flight == 0
        # The new request really is enqueued (tail position).
        remaining_ids = [request.request_id for request in queue.pop_batch(10)]
        assert result.request.request_id == remaining_ids[-1]

    def test_shed_returns_stamped_request_without_enqueueing(self):
        queue = self._full_queue(ShedToLocalExit())
        result = queue.offer(_views(), client_id="late")
        assert result.outcome is AdmissionOutcome.SHED
        assert result.request is not None
        assert result.request.client_id == "late"
        assert len(queue) == 2
        assert queue.admission_stats.shed == 1
        assert queue.session("late").shed == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(clock=SimulatedClock(), capacity=0)

    def test_submit_on_shed_policy_recounts_as_rejection(self):
        """Regression: a bare queue cannot deliver the local-exit answer a
        SHED outcome promises, so submit() must not leave shed counters
        claiming an answer that never existed."""
        queue = self._full_queue(ShedToLocalExit())
        with pytest.raises(QueueFullError):
            queue.submit(_views(), client_id="late")
        assert queue.admission_stats.shed == 0
        assert queue.admission_stats.rejected == 1
        assert queue.session("late").shed == 0
        assert queue.session("late").rejected == 1

    def test_admission_policy_registry(self):
        assert isinstance(admission_policy("reject"), RejectNewest)
        assert isinstance(admission_policy("drop-oldest"), DropOldest)
        assert isinstance(admission_policy("shed-local"), ShedToLocalExit)
        with pytest.raises(ValueError):
            admission_policy("nope")


class TestQoSWeights:
    def _backlogged(self, weights, per_client=6):
        queue = RequestQueue(clock=SimulatedClock())
        for client_id, weight in weights.items():
            queue.set_weight(client_id, weight)
        for _ in range(per_client):
            for client_id in weights:
                queue.submit(_views(), client_id=client_id)
        return queue

    def test_weighted_round_robin_share(self):
        queue = self._backlogged({"premium": 2.0, "basic": 1.0})
        batch = [request.client_id for request in queue.pop_batch(6)]
        assert batch.count("premium") == 4
        assert batch.count("basic") == 2

    def test_fractional_weights(self):
        queue = self._backlogged({"a": 1.0, "b": 0.5})
        batch = [request.client_id for request in queue.pop_batch(6)]
        assert batch.count("a") == 4
        assert batch.count("b") == 2

    def test_per_client_order_stays_fifo_under_weights(self):
        queue = self._backlogged({"a": 2.0, "b": 1.0})
        batch = queue.pop_batch(12)
        for client_id in ("a", "b"):
            ids = [r.request_id for r in batch if r.client_id == client_id]
            assert ids == sorted(ids)

    def test_idle_client_gets_no_banked_credit(self):
        queue = RequestQueue(clock=SimulatedClock())
        queue.set_weight("hi", 5.0)
        # Only "lo" is backlogged; "hi" being absent must not starve it.
        for _ in range(4):
            queue.submit(_views(), client_id="lo")
        assert len(queue.pop_batch(4)) == 4

    def test_no_weights_means_pure_fifo(self):
        queue = RequestQueue(clock=SimulatedClock())
        ids = [queue.submit(_views(), client_id=f"c{i % 3}").request_id for i in range(9)]
        popped = [request.request_id for request in queue.pop_batch(9)]
        assert popped == ids

    def test_weight_validation(self):
        queue = RequestQueue(clock=SimulatedClock())
        with pytest.raises(ValueError):
            queue.set_weight("a", 0.0)
        with pytest.raises(ValueError):
            queue.set_weight("a", -1.0)

    def test_fractional_weight_client_not_starved_by_small_batches(self):
        """Regression: deficit credit must persist across pop_batch calls —
        with max_batch_size=1 a weight-0.5 client never reaches a whole
        credit inside one pop and was starved forever."""
        queue = RequestQueue(clock=SimulatedClock())
        queue.set_weight("bulk", 0.5)
        queue.set_weight("prio", 1.0)
        for _ in range(12):
            queue.submit(_views(), client_id="bulk")
            queue.submit(_views(), client_id="prio")
        served = [queue.pop_batch(1)[0].client_id for _ in range(9)]
        assert served.count("bulk") == 3  # the 1-in-3 share its weight implies
        assert served.count("prio") == 6

    def test_idle_client_credit_not_banked_across_pops(self):
        queue = RequestQueue(clock=SimulatedClock())
        queue.set_weight("sleepy", 0.5)
        queue.set_weight("busy", 1.0)
        # "sleepy" is idle for many pops, then shows up: it must not have
        # accumulated credit while it had nothing queued.
        for _ in range(8):
            queue.submit(_views(), client_id="busy")
        for _ in range(4):
            queue.pop_batch(1)
        queue.submit(_views(), client_id="sleepy")
        first = queue.pop_batch(1)[0]
        assert first.client_id == "busy"  # sleepy still owes 1.0 of credit

    def test_weights_leave_queue_length_consistent(self):
        queue = self._backlogged({"a": 3.0, "b": 1.0}, per_client=5)
        batch = queue.pop_batch(4)
        assert len(batch) == 4
        assert len(queue) == 6
        rest = queue.pop_batch(100)
        assert len(rest) == 6
        assert len(queue) == 0


class TestArrivalProcesses:
    def test_poisson_deterministic_and_rate(self):
        first = list(itertools.islice(iter(PoissonProcess(100.0, seed=7)), 50))
        second = list(itertools.islice(iter(PoissonProcess(100.0, seed=7)), 50))
        assert first == second
        times = np.array(list(itertools.islice(iter(PoissonProcess(250.0, seed=1)), 4000)))
        assert np.all(np.diff(times) >= 0)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(250.0, rel=0.1)

    def test_poisson_seed_changes_stream(self):
        a = list(itertools.islice(iter(PoissonProcess(100.0, seed=1)), 10))
        b = list(itertools.islice(iter(PoissonProcess(100.0, seed=2)), 10))
        assert a != b

    def test_bursty_deterministic_and_mean_rate(self):
        process = BurstyProcess(50.0, 500.0, mean_base_dwell_s=0.5,
                                mean_burst_dwell_s=0.125, seed=3)
        first = list(itertools.islice(iter(process), 40))
        second = list(itertools.islice(iter(process), 40))
        assert first == second
        times = np.array(list(itertools.islice(iter(process), 6000)))
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(process.mean_rate_rps(), rel=0.15)
        # The mix rate sits strictly between the two state rates.
        assert 50.0 < process.mean_rate_rps() < 500.0

    def test_trace_replay_exact_and_validated(self):
        trace = TraceReplay([0.0, 0.5, 0.5, 2.0])
        assert list(trace) == [0.0, 0.5, 0.5, 2.0]
        with pytest.raises(ValueError):
            TraceReplay([1.0, 0.5])

    def test_process_parameter_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)
        with pytest.raises(ValueError):
            BurstyProcess(0.0, 10.0)
        with pytest.raises(ValueError):
            BurstyProcess(10.0, 10.0, mean_base_dwell_s=0.0)


class TestServiceModel:
    def test_affine_batch_time_and_capacity(self):
        model = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.001)
        assert model.batch_time_s(1) == pytest.approx(0.003)
        assert model.batch_time_s(16) == pytest.approx(0.018)
        assert model.capacity_rps(16) == pytest.approx(16 / 0.018)
        # Batching amortises the overhead: capacity grows with batch size.
        assert model.capacity_rps(16) > model.capacity_rps(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceModel(batch_overhead_s=-0.001)
        with pytest.raises(ValueError):
            ServiceModel(per_sample_s=0.0)
        with pytest.raises(ValueError):
            ServiceModel().batch_time_s(0)


class TestSimulatedClock:
    def test_advance_and_advance_to(self):
        clock = SimulatedClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock() == 1.5
        clock.advance_to(1.0)  # never backwards
        assert clock() == 1.5
        clock.advance_to(2.0)
        assert clock() == 2.0
        with pytest.raises(ValueError):
            clock.advance(-0.1)


class TestLoadGenerator:
    SERVICE = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.001)
    BATCHING = BatchingPolicy(max_batch_size=8, max_wait_s=0.005)

    def _run(self, trained_ddnn, tiny_test, *, capacity=None, admission=None,
             multiplier=2.0, num_requests=160, seed=5, process=None):
        clock = SimulatedClock()
        server = DDNNServer(
            trained_ddnn,
            0.8,
            policy=self.BATCHING,
            clock=clock,
            capacity=capacity,
            admission=admission,
        )
        offered = multiplier * self.SERVICE.capacity_rps(self.BATCHING.max_batch_size)
        generator = LoadGenerator(
            server,
            process if process is not None else PoissonProcess(offered, seed=seed),
            tiny_test.images,
            targets=tiny_test.labels,
            service_model=self.SERVICE,
        )
        return server, generator.run(num_requests)

    def test_requires_simulated_clock(self, trained_ddnn, tiny_test):
        server = DDNNServer(trained_ddnn, 0.8)
        with pytest.raises(TypeError):
            LoadGenerator(server, PoissonProcess(10.0), tiny_test.images)

    def test_underload_serves_everything(self, trained_ddnn, tiny_test):
        _, report = self._run(trained_ddnn, tiny_test, multiplier=0.5, num_requests=80)
        assert report.offered == 80
        assert report.served == 80
        assert report.rejected == report.dropped == report.shed == 0
        assert report.p95_latency_s > 0.0
        assert report.p50_latency_s <= report.p95_latency_s <= report.p99_latency_s

    def test_deterministic_replay(self, trained_ddnn, tiny_test):
        _, first = self._run(trained_ddnn, tiny_test, num_requests=60)
        _, second = self._run(trained_ddnn, tiny_test, num_requests=60)
        assert first.p95_latency_s == second.p95_latency_s
        assert [r.latency_s for r in first.responses] == [r.latency_s for r in second.responses]

    def test_unbounded_overload_tail_grows_with_run_length(self, trained_ddnn, tiny_test):
        _, short = self._run(trained_ddnn, tiny_test, num_requests=60)
        _, long = self._run(trained_ddnn, tiny_test, num_requests=240)
        assert long.p95_latency_s > 1.5 * short.p95_latency_s

    @pytest.mark.parametrize("admission_name", ["reject", "drop-oldest", "shed-local"])
    def test_bounded_overload_tail_pinned(self, trained_ddnn, tiny_test, admission_name):
        from repro.experiments.overload_study import queue_latency_bound_s

        capacity = 16
        _, report = self._run(
            trained_ddnn,
            tiny_test,
            capacity=capacity,
            admission=admission_policy(admission_name),
            num_requests=240,
        )
        bound = queue_latency_bound_s(capacity, self.BATCHING, self.SERVICE)
        assert report.max_latency_s <= bound
        overflow = report.rejected + report.dropped + report.shed
        assert overflow > 0
        assert report.offered == 240
        if admission_name == "reject":
            assert report.served + report.rejected == report.offered
        if admission_name == "drop-oldest":
            assert report.served + report.dropped == report.offered
        if admission_name == "shed-local":
            assert report.served + report.shed == report.offered
            assert len(report.shed_responses) == report.shed
            assert all(r.shed and r.exit_index == 0 for r in report.shed_responses)

    def test_shed_responses_delivered_to_sessions(self, trained_ddnn, tiny_test):
        server, report = self._run(
            trained_ddnn,
            tiny_test,
            capacity=8,
            admission=ShedToLocalExit(),
            multiplier=4.0,
            num_requests=120,
        )
        session = server.queue.session("client-0")
        assert session.shed == report.shed > 0
        # Shed answers appear in responses but never inflate `completed`.
        assert session.completed == report.served

    def test_trace_replay_drives_exact_arrival_times(self, trained_ddnn, tiny_test):
        trace = [0.0, 0.001, 0.002, 0.2, 0.4]
        _, report = self._run(
            trained_ddnn,
            tiny_test,
            process=TraceReplay(trace),
            num_requests=5,
        )
        assert report.offered == 5
        assert report.served == 5
        assert [r.enqueue_time for r in sorted(report.responses, key=lambda r: r.request_id)] == trace


class TestTokenBucketPolicy:
    def _queue(self, policy, capacity=None):
        return RequestQueue(clock=SimulatedClock(), capacity=capacity, admission=policy)

    def test_burst_then_reject_then_refill(self):
        from repro.serving import TokenBucketPolicy

        policy = TokenBucketPolicy(rate_rps=1.0, burst=3.0)
        queue = self._queue(policy)
        for _ in range(3):
            assert queue.offer(_views(), client_id="a").accepted
        result = queue.offer(_views(), client_id="a")
        assert result.outcome is AdmissionOutcome.REJECTED
        assert queue.admission_stats.rejected == 1
        # One token refills per simulated second.
        queue.clock.advance(1.0)
        assert queue.offer(_views(), client_id="a").accepted
        assert queue.offer(_views(), client_id="a").outcome is AdmissionOutcome.REJECTED

    def test_buckets_are_per_client(self):
        from repro.serving import TokenBucketPolicy

        queue = self._queue(TokenBucketPolicy(rate_rps=1.0, burst=1.0))
        assert queue.offer(_views(), client_id="a").accepted
        assert queue.offer(_views(), client_id="a").outcome is AdmissionOutcome.REJECTED
        # Client b's bucket is untouched by a's exhaustion.
        assert queue.offer(_views(), client_id="b").accepted

    def test_bucket_never_exceeds_burst(self):
        from repro.serving import TokenBucketPolicy

        policy = TokenBucketPolicy(rate_rps=10.0, burst=2.0)
        queue = self._queue(policy)
        queue.clock.advance(100.0)  # long idle: bucket caps at burst
        assert policy.tokens("a", queue.clock()) == pytest.approx(2.0)

    def test_full_queue_delegates_to_inner_policy_without_charging_rejects(self):
        from repro.serving import TokenBucketPolicy

        policy = TokenBucketPolicy(rate_rps=0.001, burst=5.0, inner=RejectNewest())
        queue = self._queue(policy, capacity=1)
        assert queue.offer(_views(), client_id="a").accepted
        before = policy.tokens("a", queue.clock())
        result = queue.offer(_views(), client_id="a")
        assert result.outcome is AdmissionOutcome.REJECTED
        # The inner full-queue rejection must not consume a token.
        assert policy.tokens("a", queue.clock()) == pytest.approx(before)

    def test_full_queue_drop_oldest_inner_still_rate_limits(self):
        from repro.serving import TokenBucketPolicy

        policy = TokenBucketPolicy(rate_rps=0.001, burst=2.0, inner=DropOldest())
        queue = self._queue(policy, capacity=1)
        assert queue.offer(_views(), client_id="a").accepted
        result = queue.offer(_views(), client_id="a")
        assert result.accepted and result.evicted is not None
        # Bucket empty now: rejected even though drop-oldest would make room.
        assert queue.offer(_views(), client_id="a").outcome is AdmissionOutcome.REJECTED

    def test_validation_and_registry(self):
        from repro.serving import TokenBucketPolicy

        with pytest.raises(ValueError):
            TokenBucketPolicy(rate_rps=0.0)
        with pytest.raises(ValueError):
            TokenBucketPolicy(rate_rps=1.0, burst=0.5)
        policy = admission_policy("token-bucket", rate_rps=5.0, burst=2.0)
        assert isinstance(policy, TokenBucketPolicy)
        assert policy.rate_rps == 5.0

    def test_server_rate_limits_chatty_client(self, trained_ddnn, tiny_test):
        from repro.serving import TokenBucketPolicy

        clock = SimulatedClock()
        server = DDNNServer(
            trained_ddnn,
            0.8,
            clock=clock,
            capacity=64,
            admission=TokenBucketPolicy(rate_rps=1.0, burst=4.0),
        )
        outcomes = [
            server.offer(tiny_test.images[i % len(tiny_test)], client_id="chatty").outcome
            for i in range(10)
        ]
        assert outcomes.count(AdmissionOutcome.ACCEPTED) == 4
        assert outcomes.count(AdmissionOutcome.REJECTED) == 6
        # A polite client still gets in.
        assert server.offer(tiny_test.images[0], client_id="polite").accepted


class TestAdaptiveShed:
    def _server(self, model, capacity=8, low_watermark=0.5, relaxed=1.0):
        from repro.serving import AdaptiveShed

        clock = SimulatedClock()
        return DDNNServer(
            model,
            0.8,
            clock=clock,
            capacity=capacity,
            admission=AdaptiveShed(low_watermark=low_watermark, relaxed_threshold=relaxed),
        )

    def test_below_watermark_accepts_everything(self, trained_ddnn, tiny_test):
        server = self._server(trained_ddnn, capacity=8)
        for i in range(4):  # stays at/below the 0.5 * 8 watermark
            assert server.offer(tiny_test.images[i % len(tiny_test)]).accepted
        assert server.queue.admission_stats.shed == 0

    def test_under_pressure_sheds_or_requeues_consistently(self, trained_ddnn, tiny_test):
        server = self._server(trained_ddnn, capacity=8)
        shed = accepted = 0
        for i in range(24):
            result = server.offer(tiny_test.images[i % len(tiny_test)], client_id="c")
            if result.outcome is AdmissionOutcome.SHED:
                shed += 1
            else:
                assert result.accepted
                accepted += 1
        stats = server.queue.admission_stats
        # Nothing is rejected outright; counters stay consistent after requeues.
        assert stats.rejected == 0
        assert stats.shed == shed
        assert stats.accepted == accepted
        assert stats.offered == 24
        assert shed > 0, "sustained pressure must shed something"
        # Shed answers were delivered immediately from the local exit.
        session = server.queue.session("c")
        assert session.shed == shed
        assert sum(1 for r in session.responses if r.shed) == shed
        assert all(r.exit_index == 0 for r in session.responses if r.shed)

    def test_full_queue_sheds_everything_at_relaxed_one(self, trained_ddnn, tiny_test):
        server = self._server(trained_ddnn, capacity=4)
        outcomes = []
        for i in range(12):
            outcomes.append(
                server.offer(tiny_test.images[i % len(tiny_test)]).outcome
            )
        # Once the queue is pinned at capacity the threshold reaches 1.0 and
        # every further arrival is answered locally.
        assert len(server.queue) <= 4
        assert outcomes[-1] is AdmissionOutcome.SHED

    def test_shed_threshold_interpolates_with_pressure(self):
        from repro.serving import AdaptiveShed

        policy = AdaptiveShed(low_watermark=0.5, relaxed_threshold=1.0)
        # shed_threshold only reads depth/capacity; fill a plain queue.
        queue = RequestQueue(clock=SimulatedClock(), capacity=10)
        base = 0.6
        assert policy.shed_threshold(queue, base) == pytest.approx(base)  # empty
        for _ in range(5):
            queue.submit(_views())
        assert policy.shed_threshold(queue, base) == pytest.approx(base)  # at watermark
        for _ in range(5):
            queue.submit(_views())
        assert policy.shed_threshold(queue, base) == pytest.approx(1.0)  # full

    def test_requires_bounded_queue(self):
        from repro.serving import AdaptiveShed

        queue = RequestQueue(clock=SimulatedClock(), admission=AdaptiveShed())
        with pytest.raises(ValueError):
            queue.offer(_views())

    def test_validation(self):
        from repro.serving import AdaptiveShed

        with pytest.raises(ValueError):
            AdaptiveShed(low_watermark=1.0)
        with pytest.raises(ValueError):
            AdaptiveShed(relaxed_threshold=-0.1)

    def test_requeue_preserves_offer_accounting(self):
        queue = RequestQueue(clock=SimulatedClock(), capacity=4)
        result_request = queue._build_request(_views(), "c", None)
        queue.admission_stats.shed += 1
        queue.session("c").shed += 1
        evicted = queue.requeue(result_request)
        assert evicted is None
        assert len(queue) == 1
        stats = queue.admission_stats
        assert stats.shed == 0 and stats.accepted == 1
        assert queue.session("c").submitted == 1
