"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    AveragePoolAggregator,
    ConcatAggregator,
    MaxPoolAggregator,
    ddnn_communication_bytes,
    normalized_entropy,
    raw_offload_bytes,
    softmax_probabilities,
)
from repro.nn import Tensor, concatenate, maximum
import repro.nn.functional as F

SETTINGS = settings(max_examples=40, deadline=None)


finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(-50, 50, allow_nan=False),
)


logit_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(2, 6)),
    elements=st.floats(-30, 30, allow_nan=False),
)


class TestTensorProperties:
    @SETTINGS
    @given(finite_arrays)
    def test_addition_is_commutative(self, values):
        a, b = Tensor(values), Tensor(values[::-1].copy())
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @SETTINGS
    @given(finite_arrays)
    def test_sum_backward_gives_all_ones(self, values):
        tensor = Tensor(values, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(values))

    @SETTINGS
    @given(finite_arrays)
    def test_relu_is_idempotent_and_nonnegative(self, values):
        tensor = Tensor(values)
        once = tensor.relu().data
        twice = Tensor(once).relu().data
        assert (once >= 0).all()
        np.testing.assert_allclose(once, twice)

    @SETTINGS
    @given(finite_arrays)
    def test_sign_ste_produces_unit_magnitude(self, values):
        out = Tensor(values).sign_ste().data
        np.testing.assert_allclose(np.abs(out), np.ones_like(values))

    @SETTINGS
    @given(finite_arrays)
    def test_concatenate_preserves_total_size(self, values):
        a, b = Tensor(values), Tensor(values * 2)
        combined = concatenate([a, b], axis=1)
        assert combined.size == 2 * values.size

    @SETTINGS
    @given(finite_arrays)
    def test_reshape_roundtrip_preserves_values(self, values):
        tensor = Tensor(values)
        roundtrip = tensor.reshape(-1).reshape(*values.shape)
        np.testing.assert_allclose(roundtrip.data, values)


class TestSoftmaxEntropyProperties:
    @SETTINGS
    @given(logit_arrays)
    def test_softmax_is_a_probability_distribution(self, logits):
        probabilities = softmax_probabilities(logits)
        assert (probabilities >= 0).all()
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0, atol=1e-9)

    @SETTINGS
    @given(logit_arrays)
    def test_normalized_entropy_bounded(self, logits):
        entropy = normalized_entropy(softmax_probabilities(logits))
        assert (entropy >= -1e-12).all()
        assert (entropy <= 1.0 + 1e-9).all()

    @SETTINGS
    @given(logit_arrays)
    def test_functional_softmax_matches_plain_numpy(self, logits):
        np.testing.assert_allclose(
            F.softmax(Tensor(logits)).data, softmax_probabilities(logits), atol=1e-9
        )

    @SETTINGS
    @given(st.integers(2, 10))
    def test_uniform_distribution_has_maximal_entropy(self, num_classes):
        uniform = np.full((1, num_classes), 1.0 / num_classes)
        assert normalized_entropy(uniform)[0] == pytest.approx(1.0)


aggregator_inputs = st.integers(2, 5).flatmap(
    lambda n: st.tuples(
        st.just(n),
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.just(n), st.integers(1, 4), st.integers(2, 6)),
            elements=st.floats(-20, 20, allow_nan=False),
        ),
    )
)


class TestAggregatorProperties:
    @SETTINGS
    @given(aggregator_inputs)
    def test_max_pool_is_permutation_invariant(self, data):
        count, stacked = data
        tensors = [Tensor(stacked[i]) for i in range(count)]
        aggregator = MaxPoolAggregator(count)
        forward = aggregator(tensors).data
        reverse = aggregator(list(reversed(tensors))).data
        np.testing.assert_allclose(forward, reverse)

    @SETTINGS
    @given(aggregator_inputs)
    def test_average_pool_is_permutation_invariant_and_bounded(self, data):
        count, stacked = data
        tensors = [Tensor(stacked[i]) for i in range(count)]
        aggregator = AveragePoolAggregator(count)
        fused = aggregator(tensors).data
        np.testing.assert_allclose(fused, aggregator(list(reversed(tensors))).data)
        assert (fused <= stacked.max(axis=0) + 1e-9).all()
        assert (fused >= stacked.min(axis=0) - 1e-9).all()

    @SETTINGS
    @given(aggregator_inputs)
    def test_max_pool_dominates_average_pool(self, data):
        count, stacked = data
        tensors = [Tensor(stacked[i]) for i in range(count)]
        maximum_fused = MaxPoolAggregator(count)(tensors).data
        average_fused = AveragePoolAggregator(count)(tensors).data
        assert (maximum_fused >= average_fused - 1e-9).all()

    @SETTINGS
    @given(aggregator_inputs)
    def test_concat_preserves_every_input(self, data):
        count, stacked = data
        tensors = [Tensor(stacked[i]) for i in range(count)]
        fused = ConcatAggregator(count)(tensors).data
        width = stacked.shape[2]
        for index in range(count):
            np.testing.assert_allclose(fused[:, index * width : (index + 1) * width], stacked[index])

    @SETTINGS
    @given(aggregator_inputs)
    def test_identical_inputs_are_fixed_points_of_pooling(self, data):
        count, stacked = data
        same = [Tensor(stacked[0]) for _ in range(count)]
        np.testing.assert_allclose(MaxPoolAggregator(count)(same).data, stacked[0])
        np.testing.assert_allclose(AveragePoolAggregator(count)(same).data, stacked[0], atol=1e-9)

    @SETTINGS
    @given(aggregator_inputs)
    def test_maximum_helper_matches_numpy_reduce(self, data):
        count, stacked = data
        tensors = [Tensor(stacked[i]) for i in range(count)]
        np.testing.assert_allclose(maximum(tensors).data, np.maximum.reduce(stacked))


class TestCommunicationProperties:
    @SETTINGS
    @given(
        st.integers(2, 20),
        st.floats(0.0, 1.0),
        st.integers(1, 64),
        st.integers(1, 1024),
    )
    def test_cost_bounded_by_extremes(self, num_classes, fraction, filters, elements):
        cost = ddnn_communication_bytes(num_classes, fraction, filters, elements)
        low = ddnn_communication_bytes(num_classes, 1.0, filters, elements)
        high = ddnn_communication_bytes(num_classes, 0.0, filters, elements)
        assert low - 1e-9 <= cost <= high + 1e-9

    @SETTINGS
    @given(
        st.integers(2, 20),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.integers(1, 64),
        st.integers(1, 1024),
    )
    def test_cost_monotone_in_exit_fraction(self, num_classes, f1, f2, filters, elements):
        low, high = sorted((f1, f2))
        assert ddnn_communication_bytes(num_classes, high, filters, elements) <= (
            ddnn_communication_bytes(num_classes, low, filters, elements) + 1e-9
        )

    @SETTINGS
    @given(st.integers(1, 4), st.integers(8, 64))
    def test_raw_offload_scales_linearly(self, channels, size):
        assert raw_offload_bytes(channels, size) == channels * size * size


class TestConvolutionProperties:
    @SETTINGS
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 2), st.integers(1, 2), st.integers(4, 8), st.integers(4, 8)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_conv_with_zero_kernel_is_zero(self, images):
        channels = images.shape[1]
        kernel = np.zeros((2, channels, 3, 3))
        out = F.conv2d(Tensor(images), Tensor(kernel), stride=1, padding=1)
        np.testing.assert_allclose(out.data, 0.0)

    @SETTINGS
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 2), st.integers(1, 2), st.integers(4, 8), st.integers(4, 8)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_conv_is_linear_in_input(self, images):
        channels = images.shape[1]
        rng = np.random.default_rng(0)
        kernel = Tensor(rng.standard_normal((2, channels, 3, 3)))
        single = F.conv2d(Tensor(images), kernel, stride=1, padding=1).data
        doubled = F.conv2d(Tensor(2 * images), kernel, stride=1, padding=1).data
        np.testing.assert_allclose(doubled, 2 * single, atol=1e-8)

    @SETTINGS
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 2), st.integers(1, 3), st.integers(4, 10), st.integers(4, 10)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_max_pool_never_below_avg_pool(self, images):
        maximum_pooled = F.max_pool2d(Tensor(images), 2, stride=2).data
        average_pooled = F.avg_pool2d(Tensor(images), 2, stride=2).data
        assert (maximum_pooled >= average_pooled - 1e-9).all()


class TestDatasetProperties:
    @SETTINGS
    @given(st.integers(1, 30), st.integers(0, 1000))
    def test_generated_dataset_invariants(self, num_samples, seed):
        from repro.datasets import generate_mvmc

        dataset = generate_mvmc(num_samples, seed=seed)
        assert len(dataset) == num_samples
        assert dataset.images.min() >= 0.0 and dataset.images.max() <= 1.0
        # Per-device labels are either -1 or the sample's own label.
        for index in range(num_samples):
            labels = set(dataset.device_labels[index]) - {-1}
            assert labels.issubset({dataset.labels[index]})
        # Each sample is seen by at least one device.
        assert dataset.presence().any(axis=1).all()
