"""Tests for the shared exit-cascade engine (threshold rules + routing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StagedInferenceEngine, build_ddnn, normalize_thresholds
from repro.core.cascade import CascadeRouter, ExitCascade, build_exit_criteria
from repro.hierarchy import HierarchyRuntime, partition_ddnn


class TestNormalizeThresholds:
    def test_single_float_broadcasts_to_all_exits(self):
        assert normalize_thresholds(0.4, 3) == [0.4, 0.4, 1.0]

    def test_single_float_final_exit_still_forced_to_one(self):
        # Even a broadcast value never overrides the always-classify rule.
        assert normalize_thresholds(0.2, 1) == [1.0]
        assert normalize_thresholds(0.2, 2) == [0.2, 1.0]

    def test_n_minus_one_thresholds_get_final_appended(self):
        assert normalize_thresholds([0.3, 0.6], 3) == [0.3, 0.6, 1.0]

    def test_n_thresholds_final_value_is_overridden(self):
        # A caller-supplied final threshold is ignored: the last exit must
        # classify every sample that reaches it.
        assert normalize_thresholds([0.3, 0.6, 0.1], 3) == [0.3, 0.6, 1.0]

    @pytest.mark.parametrize("bad", [[], [0.1], [0.1, 0.2, 0.3, 0.4]])
    def test_wrong_length_raises(self, bad):
        with pytest.raises(ValueError):
            normalize_thresholds(bad, 3)

    def test_zero_exits_rejected(self):
        with pytest.raises(ValueError):
            normalize_thresholds(0.5, 0)

    def test_build_exit_criteria_names_and_values(self):
        criteria = build_exit_criteria([0.25], ["local", "cloud"])
        assert [c.name for c in criteria] == ["local", "cloud"]
        assert [c.threshold for c in criteria] == [0.25, 1.0]

    def test_out_of_range_threshold_rejected(self):
        with pytest.raises(ValueError):
            build_exit_criteria([1.5], ["local", "cloud"])

    @pytest.mark.parametrize("bad", [True, False, np.bool_(True)])
    def test_bool_thresholds_rejected(self, bad):
        """Regression: isinstance(x, (int, float)) accepts bool, silently
        coercing True -> broadcast 1.0 (exit everything) and False -> 0.0."""
        with pytest.raises(ValueError, match="bool"):
            normalize_thresholds(bad, 3)
        with pytest.raises(ValueError, match="bool"):
            normalize_thresholds([bad, 0.5], 3)

    @pytest.mark.parametrize("bad", [float("nan"), np.nan])
    def test_nan_thresholds_rejected(self, bad):
        with pytest.raises(ValueError, match="NaN"):
            normalize_thresholds(bad, 2)
        with pytest.raises(ValueError, match="NaN"):
            normalize_thresholds([0.3, bad], 3)

    @pytest.mark.parametrize("bad", [-0.1, -5.0])
    def test_negative_thresholds_rejected(self, bad):
        with pytest.raises(ValueError, match=">= 0"):
            normalize_thresholds(bad, 2)
        with pytest.raises(ValueError, match=">= 0"):
            normalize_thresholds([bad], 3)

    def test_numpy_scalar_thresholds_still_accepted(self):
        assert normalize_thresholds(np.float32(0.25), 2) == [pytest.approx(0.25), 1.0]
        assert normalize_thresholds(np.float64(0.25), 2) == [0.25, 1.0]
        assert normalize_thresholds(np.int64(0), 2) == [0.0, 1.0]


class TestCascadeRouter:
    def _cascade(self, thresholds=(0.5,)):
        return ExitCascade(list(thresholds), ["local", "cloud"])

    def test_confident_samples_exit_early(self):
        router = self._cascade().router(3)
        confident = np.array([[10.0, 0.0, 0.0], [0.0, 10.0, 0.0], [0.1, 0.0, 0.05]])
        outcome = router.offer(confident)
        # The two peaked rows exit locally; the flat row continues.
        assert outcome.exit_name == "local"
        assert outcome.newly_assigned.tolist() == [True, True, False]
        assert router.has_remaining()
        final = router.offer(np.array([[0.0, 0.0, 1.0]] * 3))
        assert final.newly_assigned.tolist() == [False, False, True]
        assert not router.has_remaining()
        assert router.exit_indices.tolist() == [0, 0, 1]
        assert router.predictions.tolist() == [0, 1, 2]

    def test_final_exit_takes_everything_regardless_of_entropy(self):
        cascade = ExitCascade(0.0, ["local", "cloud"])
        router = cascade.router(2)
        router.offer(np.array([[5.0, 0.0], [0.0, 5.0]]))  # threshold 0: nobody exits
        assert router.remaining.all()
        flat = np.zeros((2, 2))  # maximal entropy, still classified at the end
        router.offer(flat)
        assert not router.has_remaining()
        assert router.exit_indices.tolist() == [1, 1]

    def test_batch_size_mismatch_rejected(self):
        router = self._cascade().router(4)
        with pytest.raises(ValueError):
            router.offer(np.zeros((3, 3)))

    def test_exit_index_out_of_range_rejected(self):
        router = self._cascade().router(1)
        with pytest.raises(IndexError):
            router.offer(np.zeros((1, 3)), exit_index=5)

    def test_skipping_exhausted_tiers_is_valid(self):
        cascade = ExitCascade([1.0, 0.5], ["local", "edge", "cloud"])
        router = cascade.router(2)
        router.offer(np.array([[9.0, 0.0], [0.0, 9.0]]))  # threshold 1.0: all exit
        assert not router.has_remaining()
        # Upper tiers are simply never offered; results are already complete.
        assert router.exit_indices.tolist() == [0, 0]


class TestCascadeSharedByBothEngines:
    def test_engines_share_one_cascade_implementation(self, trained_ddnn):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8)
        assert isinstance(engine.cascade, ExitCascade)
        assert isinstance(runtime.cascade, ExitCascade)
        assert not hasattr(engine, "_build_criteria")
        assert not hasattr(runtime, "_build_criteria")
        assert engine.cascade.thresholds == runtime.cascade.thresholds

    @pytest.mark.parametrize("thresholds", [0.8, [0.8], [0.8, 0.3]])
    def test_threshold_normalization_identical_across_engines(self, trained_ddnn, thresholds):
        engine = StagedInferenceEngine(trained_ddnn, thresholds)
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), thresholds)
        assert [c.threshold for c in engine.criteria] == [c.threshold for c in runtime.criteria]
        assert engine.criteria[-1].threshold == 1.0
        assert runtime.criteria[-1].threshold == 1.0

    @pytest.mark.parametrize("bad", [[0.1, 0.2, 0.3, 0.4], []])
    def test_wrong_length_raises_in_both_engines(self, trained_ddnn, bad):
        with pytest.raises(ValueError):
            StagedInferenceEngine(trained_ddnn, bad)
        with pytest.raises(ValueError):
            HierarchyRuntime(partition_ddnn(trained_ddnn), bad)

    @pytest.mark.parametrize("bad", [True, float("nan"), -0.2, [True, 0.5], [0.3, float("nan")]])
    def test_invalid_threshold_values_raise_in_all_three_consumers(self, trained_ddnn, bad):
        """bool / NaN / negative thresholds must fail loudly in every cascade
        consumer: the offline engine, the hierarchy runtime and the server."""
        from repro.serving import DDNNServer

        with pytest.raises(ValueError):
            StagedInferenceEngine(trained_ddnn, bad)
        with pytest.raises(ValueError):
            HierarchyRuntime(partition_ddnn(trained_ddnn), bad)
        with pytest.raises(ValueError):
            DDNNServer(trained_ddnn, bad)

    def test_run_model_matches_engine_run(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        result = engine.run(tiny_test)
        routed = engine.cascade.run_model(trained_ddnn, tiny_test.images)
        np.testing.assert_array_equal(result.predictions, routed.predictions)
        np.testing.assert_array_equal(result.exit_indices, routed.exit_indices)
        np.testing.assert_array_equal(result.entropies, routed.entropies)
        assert routed.exit_names_per_sample == [
            result.exit_names[i] for i in result.exit_indices
        ]

    def test_cascade_communication_accounting(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        result = engine.run(tiny_test)
        fraction = result.local_exit_fraction
        assert engine.cascade.per_device_bytes(fraction) == engine.communication_bytes(result)
        assert engine.cascade.communication_reduction(fraction) == pytest.approx(
            engine.communication_reduction(result)
        )

    def test_cascade_without_communication_model_raises(self):
        cascade = ExitCascade(0.5, ["local", "cloud"])
        with pytest.raises(ValueError):
            cascade.per_device_bytes(0.5)

    def test_for_model_builds_matching_exits(self, trained_ddnn):
        cascade = ExitCascade.for_model(trained_ddnn, 0.7)
        assert cascade.exit_names == trained_ddnn.exit_names
        assert cascade.num_exits == trained_ddnn.num_exits
        assert cascade.communication is not None


class TestCascadeWithUntrainedTopologies:
    def test_edge_topology_threshold_counts(self, tiny_train):
        from repro.core import DDNNConfig, DDNNTopology

        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
            seed=5,
        )
        model = build_ddnn(config)
        # Three exits: 2 or 3 thresholds are accepted, others are not.
        assert StagedInferenceEngine(model, [0.7, 0.8]).criteria[-1].threshold == 1.0
        assert StagedInferenceEngine(model, [0.7, 0.8, 0.2]).criteria[-1].threshold == 1.0
        with pytest.raises(ValueError):
            StagedInferenceEngine(model, [0.7])
