"""Tests for the synthetic multi-view multi-camera dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    CLASS_NAMES,
    DEFAULT_DEVICE_PROFILES,
    IMAGE_SIZE,
    NOT_PRESENT_LABEL,
    MVMCDataset,
    Standardizer,
    add_gaussian_noise,
    blank_view,
    class_distribution_per_device,
    denormalize,
    generate_mvmc,
    load_mvmc_splits,
    normalize,
    random_flip,
    render_view,
    sample_object,
)


@pytest.fixture(scope="module")
def small_dataset():
    return generate_mvmc(40, seed=5)


class TestShapes:
    def test_sample_object_respects_class(self):
        rng = np.random.default_rng(0)
        for label, name in enumerate(CLASS_NAMES):
            instance = sample_object(label, rng)
            assert instance.label == label
            assert instance.class_name == name
            assert 0.0 < instance.size <= 1.0

    def test_render_view_shape_and_range(self):
        rng = np.random.default_rng(0)
        instance = sample_object(0, rng)
        image = render_view(instance, view_angle=0.3, rng=rng)
        assert image.shape == (3, IMAGE_SIZE, IMAGE_SIZE)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_different_view_angles_produce_different_images(self):
        rng = np.random.default_rng(0)
        instance = sample_object(1, rng)
        a = render_view(instance, 0.0, np.random.default_rng(1), noise_level=0.0)
        b = render_view(instance, np.pi / 2, np.random.default_rng(1), noise_level=0.0)
        assert not np.allclose(a, b)

    def test_blank_view_is_uniform_grey(self):
        image = blank_view()
        assert image.shape == (3, IMAGE_SIZE, IMAGE_SIZE)
        np.testing.assert_allclose(image, 0.5)

    def test_camera_quality_parameters_change_output(self):
        rng = np.random.default_rng(0)
        instance = sample_object(2, rng)
        clean = render_view(instance, 0.0, np.random.default_rng(3), noise_level=0.0, brightness=1.0)
        degraded = render_view(
            instance, 0.0, np.random.default_rng(3), noise_level=0.2, blur=1.0, brightness=0.6
        )
        assert np.abs(clean - degraded).mean() > 0.01


class TestGeneration:
    def test_shapes_and_alignment(self, small_dataset):
        assert small_dataset.images.shape == (40, 6, 3, IMAGE_SIZE, IMAGE_SIZE)
        assert small_dataset.labels.shape == (40,)
        assert small_dataset.device_labels.shape == (40, 6)
        assert small_dataset.num_devices == 6
        assert small_dataset.num_classes == len(CLASS_NAMES)
        assert small_dataset.image_shape == (3, IMAGE_SIZE, IMAGE_SIZE)

    def test_labels_are_valid_classes(self, small_dataset):
        assert set(np.unique(small_dataset.labels)).issubset(set(range(len(CLASS_NAMES))))

    def test_device_labels_match_sample_label_or_not_present(self, small_dataset):
        for index in range(len(small_dataset)):
            sample = small_dataset[index]
            for device_label in sample.device_labels:
                assert device_label in (NOT_PRESENT_LABEL, sample.label)

    def test_every_sample_visible_to_at_least_one_device(self, small_dataset):
        assert small_dataset.presence().any(axis=1).all()

    def test_absent_views_are_blank(self, small_dataset):
        presence = small_dataset.presence()
        absent = np.argwhere(~presence)
        assert len(absent) > 0
        sample_index, device_index = absent[0]
        view = small_dataset.images[sample_index, device_index]
        assert np.abs(view - 0.5).mean() < 0.05

    def test_determinism_by_seed(self):
        a = generate_mvmc(10, seed=3)
        b = generate_mvmc(10, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_changes_data(self):
        a = generate_mvmc(10, seed=3)
        b = generate_mvmc(10, seed=4)
        assert not np.array_equal(a.labels, b.labels) or not np.allclose(a.images, b.images)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            generate_mvmc(0)


class TestDatasetOperations:
    def test_subset(self, small_dataset):
        subset = small_dataset.subset(np.array([0, 5, 7]))
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels, small_dataset.labels[[0, 5, 7]])

    def test_select_devices(self, small_dataset):
        selected = small_dataset.select_devices([5, 1])
        assert selected.num_devices == 2
        np.testing.assert_array_equal(selected.images[:, 0], small_dataset.images[:, 5])
        assert selected.profiles[0].name == DEFAULT_DEVICE_PROFILES[5].name

    def test_with_failed_devices_blanks_views_and_labels(self, small_dataset):
        degraded = small_dataset.with_failed_devices([2])
        assert (degraded.device_labels[:, 2] == NOT_PRESENT_LABEL).all()
        np.testing.assert_allclose(degraded.images[:, 2], 0.5)
        # Other devices untouched.
        np.testing.assert_array_equal(degraded.images[:, 0], small_dataset.images[:, 0])
        # Original is not modified in place.
        assert not (small_dataset.device_labels[:, 2] == NOT_PRESENT_LABEL).all()

    def test_device_views(self, small_dataset):
        views = small_dataset.device_views(3)
        assert views.shape == (40, 3, IMAGE_SIZE, IMAGE_SIZE)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MVMCDataset(np.zeros((2, 3, 3, 4, 4)), np.zeros(3), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            MVMCDataset(np.zeros((2, 3, 3, 4, 4)), np.zeros(2), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            MVMCDataset(np.zeros((2, 4, 4)), np.zeros(2), np.zeros((2, 4)))


class TestSplitsAndStats:
    def test_load_mvmc_splits_sizes(self):
        train, test = load_mvmc_splits(train_samples=50, test_samples=20, seed=1)
        assert len(train) == 50
        assert len(test) == 20
        assert train.num_devices == test.num_devices == 6

    def test_class_distribution_per_device(self, small_dataset):
        distribution = class_distribution_per_device(small_dataset)
        assert set(distribution) == set(CLASS_NAMES) | {"not-present"}
        totals = sum(distribution[key] for key in distribution)
        np.testing.assert_array_equal(totals, np.full(6, len(small_dataset)))

    def test_visibility_gradient_across_devices(self):
        """Devices later in the default profile list see more objects (Fig. 6)."""
        dataset = generate_mvmc(150, seed=0)
        present_counts = dataset.presence().sum(axis=0)
        assert present_counts[-1] > present_counts[0]


class TestTransforms:
    def test_normalize_denormalize_roundtrip(self):
        images = np.random.default_rng(0).random((2, 3, 4, 4))
        np.testing.assert_allclose(denormalize(normalize(images)), images)

    def test_random_flip_preserves_content(self):
        images = np.random.default_rng(0).random((6, 3, 8, 8))
        flipped = random_flip(images, np.random.default_rng(1), probability=1.0)
        np.testing.assert_allclose(flipped, images[..., ::-1])

    def test_random_flip_is_consistent_across_device_views(self):
        images = np.random.default_rng(0).random((4, 6, 3, 8, 8))
        flipped = random_flip(images, np.random.default_rng(2), probability=1.0)
        np.testing.assert_allclose(flipped, images[..., ::-1])

    def test_add_gaussian_noise_changes_values(self):
        images = np.zeros((2, 3, 4, 4))
        noisy = add_gaussian_noise(images, np.random.default_rng(0), std=0.1)
        assert np.abs(noisy).mean() > 0

    def test_standardizer_zero_mean_unit_std(self):
        images = np.random.default_rng(0).random((50, 3, 8, 8)) * 3 + 1
        scaler = Standardizer()
        transformed = scaler.fit_transform(images)
        np.testing.assert_allclose(transformed.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-10)
        np.testing.assert_allclose(transformed.std(axis=(0, 2, 3)), np.ones(3), atol=1e-6)

    def test_standardizer_requires_fit(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((1, 3, 4, 4)))
