"""Compiled-vs-eager equivalence for the repro.compile inference plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import (
    CompileError,
    CompiledPlan,
    compile_ddnn,
    compile_plan,
    verify_compiled,
)
from repro.core.cascade import ExitCascade
from repro.core.config import DDNNTopology
from repro.core.ddnn import build_ddnn
from repro.core.inference import StagedInferenceEngine
from repro.nn.blocks import ConvPBlock, FCBlock
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor, no_grad

RNG = np.random.default_rng(11)


def eager_forward(module, x: np.ndarray) -> np.ndarray:
    module.eval()
    with no_grad():
        return module(Tensor(x)).data


def warm_batch_norm(module, x: np.ndarray, passes: int = 3) -> None:
    """Give every BatchNorm non-trivial running statistics."""
    module.train()
    with no_grad():
        for _ in range(passes):
            module(Tensor(x + RNG.normal(scale=0.5, size=x.shape)))
    module.eval()


# --------------------------------------------------------------------------- #
# Single-stack plans
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (3, 2)])
def test_conv_plan_matches_eager_across_geometry(stride, padding):
    conv = Conv2d(3, 5, kernel_size=3, stride=stride, padding=padding, rng=RNG)
    x = RNG.normal(size=(4, 3, 12, 12))
    plan = compile_plan(conv)
    np.testing.assert_allclose(plan(x), eager_forward(conv, x), rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("stride,padding", [(2, 0), (2, 1), (3, 1)])
def test_max_pool_plan_matches_eager(stride, padding):
    pool = MaxPool2d(3, stride=stride, padding=padding)
    x = RNG.normal(size=(3, 4, 11, 11))
    plan = compile_plan(pool)
    np.testing.assert_array_equal(plan(x), eager_forward(pool, x))


def test_avg_pool_plan_matches_eager():
    pool = AvgPool2d(2, stride=2, padding=0)
    x = RNG.normal(size=(2, 3, 8, 8))
    plan = compile_plan(pool)
    np.testing.assert_allclose(plan(x), eager_forward(pool, x), rtol=1e-12, atol=1e-12)


def test_conv_bn_relu_folding_with_nontrivial_stats():
    stack = Sequential(
        Conv2d(3, 6, kernel_size=3, stride=1, padding=1, rng=RNG),
        BatchNorm2d(6),
        ReLU(),
    )
    x = RNG.normal(size=(6, 3, 10, 10))
    warm_batch_norm(stack, x)
    assert not np.allclose(stack[1].running_mean, 0.0)
    assert not np.allclose(stack[1].running_var, 1.0)
    # make gamma/beta non-trivial too
    stack[1].gamma.data = RNG.normal(loc=1.0, scale=0.3, size=6)
    stack[1].beta.data = RNG.normal(scale=0.2, size=6)

    plan = compile_plan(stack)
    # Conv+BN+ReLU folds into a single fused conv op.
    assert len(plan.ops) == 1
    np.testing.assert_allclose(plan(x), eager_forward(stack, x), rtol=1e-9, atol=1e-9)


def test_linear_bn_folding_with_nontrivial_stats():
    stack = Sequential(Linear(12, 7, rng=RNG), BatchNorm1d(7), ReLU())
    x = RNG.normal(size=(9, 12))
    warm_batch_norm(stack, x)
    stack[1].gamma.data = RNG.normal(loc=1.0, scale=0.3, size=7)
    stack[1].beta.data = RNG.normal(scale=0.2, size=7)

    plan = compile_plan(stack)
    assert len(plan.ops) == 1
    np.testing.assert_allclose(plan(x), eager_forward(stack, x), rtol=1e-9, atol=1e-9)


def test_fused_blocks_match_eager_bit_for_bit():
    """Binary ConvP/FC blocks keep the exact eager arithmetic (sign-safe)."""
    stack = Sequential(ConvPBlock(3, 4, binary=True, rng=RNG))
    x = RNG.normal(size=(5, 3, 16, 16))
    warm_batch_norm(stack, x)
    plan = compile_plan(stack)
    np.testing.assert_array_equal(plan(x), eager_forward(stack, x))

    fc = FCBlock(10, 6, binary=True, final=False, rng=RNG)
    vec = RNG.normal(size=(7, 10))
    warm_batch_norm(fc, vec)
    fc_plan = compile_plan(fc)
    np.testing.assert_array_equal(fc_plan(vec), eager_forward(fc, vec))


def test_elementwise_plans_match_eager():
    stack = Sequential(Linear(5, 5, rng=RNG), Sigmoid(), Linear(5, 4, rng=RNG), Tanh(), Flatten())
    x = RNG.normal(size=(3, 5))
    plan = compile_plan(stack)
    np.testing.assert_allclose(plan(x), eager_forward(stack, x), rtol=1e-12, atol=1e-12)


def test_plan_replans_on_batch_shape_change():
    stack = Sequential(Conv2d(2, 3, kernel_size=3, padding=1, rng=RNG), ReLU())
    plan = compile_plan(stack)
    for batch in (4, 1, 6, 1):
        x = RNG.normal(size=(batch, 2, 9, 9))
        np.testing.assert_allclose(plan(x), eager_forward(stack, x), rtol=1e-12, atol=1e-12)
        assert plan._planned_shape == x.shape


def test_unsupported_module_raises_compile_error():
    class Weird(Module):
        def forward(self, inputs):
            return inputs

    with pytest.raises(CompileError):
        CompiledPlan(Weird())


# --------------------------------------------------------------------------- #
# Whole-model compilation
# --------------------------------------------------------------------------- #
def _warmed_model(**overrides):
    defaults = dict(
        num_devices=3,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=16,
        seed=0,
    )
    defaults.update(overrides)
    model = build_ddnn(**defaults)
    views = RNG.normal(size=(6, model.config.num_devices, 3, 32, 32))
    model.train()
    with no_grad():
        for _ in range(2):
            model(views + RNG.normal(scale=0.3, size=views.shape))
    model.eval()
    return model, views


def test_compiled_ddnn_logits_allclose_fp32():
    model, views = _warmed_model()
    compiled = compile_ddnn(model)
    worst = verify_compiled(model, compiled, views, rtol=1e-5, atol=1e-6)
    assert worst < 1e-6


def test_compiled_ddnn_batch_size_one():
    model, views = _warmed_model()
    compiled = compile_ddnn(model)
    assert verify_compiled(model, compiled, views[:1]) < 1e-6


def test_compiled_ddnn_edge_topology():
    model, views = _warmed_model(
        num_devices=4,
        topology=DDNNTopology.from_name("devices_edges_cloud", num_edges=2),
        cloud_conv_blocks=1,
        cloud_hidden_units=8,
    )
    compiled = compile_ddnn(model)
    assert verify_compiled(model, compiled, views) < 1e-6
    assert compiled.exit_names == ["local", "edge", "cloud"]


def test_compiled_ddnn_mixed_precision_cloud():
    model, views = _warmed_model(binary_cloud=False)
    compiled = compile_ddnn(model)
    assert verify_compiled(model, compiled, views) < 1e-6


def test_routing_decisions_byte_identical_through_cascade_router():
    model, views = _warmed_model()
    cascade = ExitCascade.for_model(model, [0.5, 1.0])
    eager = cascade.run_model(model, views, batch_size=4, compile=False)
    fast = cascade.run_model(model, views, batch_size=4, compile=True)
    np.testing.assert_array_equal(eager.predictions, fast.predictions)
    np.testing.assert_array_equal(eager.exit_indices, fast.exit_indices)
    for name in cascade.exit_names:
        np.testing.assert_array_equal(eager.exit_predictions[name], fast.exit_predictions[name])


@pytest.mark.parametrize("threshold", [0.0, 0.5, 1.0])
def test_routing_identical_across_thresholds_and_batch_sizes(threshold):
    model, views = _warmed_model()
    cascade = ExitCascade.for_model(model, threshold)
    for batch_size in (1, 3, 16):
        eager = cascade.run_model(model, views, batch_size=batch_size, compile=False)
        fast = cascade.run_model(model, views, batch_size=batch_size, compile=True)
        np.testing.assert_array_equal(eager.predictions, fast.predictions)
        np.testing.assert_array_equal(eager.exit_indices, fast.exit_indices)
        np.testing.assert_allclose(eager.entropies, fast.entropies, rtol=1e-9, atol=1e-12)


def test_staged_inference_engine_compile_knob():
    model, views = _warmed_model()
    eager = StagedInferenceEngine(model, 0.8, batch_size=4).run(views)
    fast = StagedInferenceEngine(model, 0.8, batch_size=4, compile=True).run(views)
    np.testing.assert_array_equal(eager.predictions, fast.predictions)
    np.testing.assert_array_equal(eager.exit_indices, fast.exit_indices)


def test_compiled_plan_cache_and_invalidate():
    model, views = _warmed_model()
    cascade = ExitCascade.for_model(model, 0.8, compile=True)
    first = cascade.compiled_for(model)
    assert cascade.compiled_for(model) is first
    cascade.invalidate_compiled()
    assert cascade.compiled_for(model) is not first


def test_arena_keeps_buffers_per_batch_shape():
    """Alternating batch shapes must re-bind, not re-allocate, buffers."""
    stack = Sequential(Conv2d(2, 3, kernel_size=3, padding=1, rng=RNG), ReLU())
    plan = compile_plan(stack)
    big = RNG.normal(size=(8, 2, 9, 9))
    small = RNG.normal(size=(1, 2, 9, 9))
    plan(big)
    plan(small)
    allocated = len(plan._arena._buffers)
    # A server-style interleave of shapes re-plans but allocates nothing new.
    for _ in range(3):
        np.testing.assert_allclose(plan(big), eager_forward(stack, big), rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(plan(small), eager_forward(stack, small), rtol=1e-12, atol=1e-12)
    assert len(plan._arena._buffers) == allocated


def test_hierarchy_runtime_scopes_compiled_attachment_to_run():
    """Compiled sections attach only for the duration of a run: a shared
    deployment is never left mutated, so eager and compiled runtimes can
    alternate over it and stay equivalent."""
    from repro.datasets.mvmc import DEFAULT_DEVICE_PROFILES, MVMCDataset
    from repro.hierarchy.partition import partition_ddnn
    from repro.hierarchy.runtime import HierarchyRuntime

    model, views = _warmed_model()
    dataset = MVMCDataset(
        images=np.clip(views, 0.0, 1.0),
        labels=np.zeros(len(views), dtype=np.int64),
        device_labels=np.zeros((len(views), views.shape[1]), dtype=np.int64),
        profiles=DEFAULT_DEVICE_PROFILES[: views.shape[1]],
    )
    deployment = partition_ddnn(model)
    fast = HierarchyRuntime(deployment, 0.8, compile=True)
    eager = HierarchyRuntime(deployment, 0.8)

    # Constructing a compiled runtime does not mutate the shared deployment.
    assert deployment.devices[0].compiled is None
    fast_result = fast.run(dataset)
    # ... and after its run, the deployment is back to the eager path.
    assert deployment.devices[0].compiled is None
    assert deployment.cloud.compiled_tier is None
    eager_result = eager.run(dataset)
    np.testing.assert_array_equal(fast_result.predictions, eager_result.predictions)
    assert fast_result.exit_names_per_sample == eager_result.exit_names_per_sample


class TestPlanTiming:
    def _plan(self):
        conv = Conv2d(3, 4, kernel_size=3, padding=1, rng=RNG)
        return compile_plan(Sequential(conv, ReLU(), MaxPool2d(2)))

    def test_disabled_by_default(self):
        plan = self._plan()
        plan(RNG.standard_normal((2, 3, 8, 8)))
        assert plan.total_time_s == 0.0
        assert all(t.calls == 0 for t in plan.op_timings())

    def test_accumulates_per_op_and_resets(self):
        plan = self._plan()
        plan.enable_timing()
        x = RNG.standard_normal((2, 3, 8, 8))
        plan(x)
        plan(x)
        timings = plan.op_timings()
        assert len(timings) == len(plan.ops)
        assert all(t.calls == 2 for t in timings)
        assert plan.total_time_s > 0.0
        assert plan.total_time_s == pytest.approx(sum(t.total_s for t in timings))
        assert all(t.mean_s == pytest.approx(t.total_s / 2) for t in timings)
        plan.reset_timing()
        assert plan.total_time_s == 0.0
        plan.disable_timing()
        plan(x)
        assert plan.total_time_s == 0.0

    def test_compiled_ddnn_aggregates_all_plans(self):
        model, views = _warmed_model()
        compiled = compile_ddnn(model)
        compiled.enable_timing()
        compiled(views)
        timings = compiled.op_timings()
        assert timings and all(t.calls == 1 for t in timings)
        assert compiled.total_time_s == pytest.approx(sum(t.total_s for t in timings))
        # Every sub-plan contributed (device branches + cloud tier).
        assert {t.plan for t in timings} >= {"device-features", "cloud-head"}
        compiled.reset_timing()
        assert compiled.total_time_s == 0.0

    def test_service_model_calibration_from_plan_timings(self):
        from repro.serving import DDNNServer, ServiceModel

        model, views = _warmed_model()
        server = DDNNServer(model, 0.8, compile=True)
        model = ServiceModel.from_plan_timings(
            server, views[0], batch_size=4, repeats=2
        )
        assert model.per_sample_s > 0.0
        assert model.batch_overhead_s >= 0.0
        assert model.batch_time_s(4) > model.batch_time_s(1)
        # Timing is switched back off afterwards.
        compiled = server.cascade.compiled_for(server.model)
        before = compiled.total_time_s
        compiled(views)
        assert compiled.total_time_s == before
