"""Tests for the distributed hierarchy simulator (network, nodes, faults, runtime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StagedInferenceEngine
from repro.hierarchy import (
    CLOUD_NAME,
    LOCAL_AGGREGATOR_NAME,
    FaultPlan,
    HierarchyRuntime,
    Message,
    NetworkFabric,
    NetworkLink,
    partition_ddnn,
    random_failures,
    single_device_failures,
)
from repro.hierarchy.telemetry import SampleTrace, Telemetry


class TestNetwork:
    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message("a", "b", size_bytes=-1)

    def test_link_transfer_time(self):
        link = NetworkLink("a", "b", bandwidth_bytes_per_s=1000.0, latency_s=0.5)
        assert link.transfer_time(1000.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            link.transfer_time(-1.0)

    def test_link_accumulates_stats_and_resets(self):
        link = NetworkLink("a", "b", bandwidth_bytes_per_s=100.0, latency_s=0.0)
        link.send(Message("a", "b", 50.0))
        link.send(Message("a", "b", 150.0))
        assert link.stats.messages == 2
        assert link.stats.bytes_transferred == 200.0
        link.reset()
        assert link.stats.messages == 0

    def test_fabric_routing_and_totals(self):
        fabric = NetworkFabric()
        fabric.connect("device-0", "cloud", bandwidth_bytes_per_s=100.0, latency_s=0.0)
        fabric.connect("device-1", "cloud")
        assert fabric.has_link("device-0", "cloud")
        assert not fabric.has_link("cloud", "device-0")
        fabric.send(Message("device-0", "cloud", 10.0))
        fabric.send(Message("device-1", "cloud", 30.0))
        assert fabric.total_bytes() == 40.0
        assert fabric.total_messages() == 2
        assert fabric.bytes_from("device-0") == 10.0
        assert len(fabric.log) == 2
        fabric.reset()
        assert fabric.total_bytes() == 0.0 and not fabric.log

    def test_fabric_rejects_duplicates_and_unknown_links(self):
        fabric = NetworkFabric()
        fabric.connect("a", "b")
        with pytest.raises(ValueError):
            fabric.connect("a", "b")
        with pytest.raises(KeyError):
            fabric.link("a", "c")


class TestFaultPlans:
    def test_permanent_failures(self):
        plan = FaultPlan(failed_devices={1, 3})
        assert plan.device_is_down(1) and plan.device_is_down(3)
        assert not plan.device_is_down(0)
        assert not plan.sample_delivery(1)
        assert plan.sample_delivery(0)
        assert not plan.is_empty()

    def test_intermittent_failures_probabilistic(self):
        plan = FaultPlan(intermittent={0: 0.5}, seed=0)
        outcomes = [plan.sample_delivery(0) for _ in range(200)]
        assert 0.3 < np.mean(outcomes) < 0.7

    def test_intermittent_probability_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(intermittent={0: 1.5})

    def test_single_device_failures_helper(self):
        plans = single_device_failures(6)
        assert len(plans) == 6
        assert plans[2].failed_devices == {2}

    def test_random_failures_helper(self):
        plan = random_failures(6, 2, seed=1)
        assert len(plan.failed_devices) == 2
        with pytest.raises(ValueError):
            random_failures(4, 5)


class TestPartition:
    def test_deployment_structure(self, trained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        assert len(deployment.devices) == trained_ddnn.config.num_devices
        assert deployment.local_aggregator is not None
        assert deployment.cloud.name == CLOUD_NAME
        assert deployment.edges == []
        for device in deployment.devices:
            assert deployment.fabric.has_link(device.name, LOCAL_AGGREGATOR_NAME)
            assert deployment.fabric.has_link(device.name, CLOUD_NAME)
        assert deployment.node_by_name(deployment.devices[0].name) is deployment.devices[0]
        with pytest.raises(KeyError):
            deployment.node_by_name("nope")

    def test_device_payload_sizes_match_eq1_terms(self, trained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        device = deployment.devices[0]
        config = trained_ddnn.config
        assert device.summary_bytes() == 4 * config.num_classes
        assert device.feature_bytes() == config.device_filters * config.device_feature_map_elements / 8
        assert device.raw_input_bytes() == 3 * 32 * 32

    def test_model_sections_are_shared_not_copied(self, trained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        assert deployment.devices[0].branch is trained_ddnn.device_branches[0]
        assert deployment.cloud.model is trained_ddnn.cloud


class TestHierarchyRuntime:
    def test_matches_centralized_staged_inference(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        central = engine.run(tiny_test)
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8)
        distributed = runtime.run(tiny_test)
        np.testing.assert_array_equal(central.predictions, distributed.predictions)
        assert central.local_exit_fraction == pytest.approx(distributed.local_exit_fraction)
        assert distributed.accuracy() == pytest.approx(central.overall_accuracy(tiny_test.labels))

    def test_byte_accounting_matches_eq1(self, trained_ddnn, tiny_test):
        engine = StagedInferenceEngine(trained_ddnn, 0.8)
        central = engine.run(tiny_test)
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8)
        distributed = runtime.run(tiny_test)
        per_device = distributed.mean_bytes_per_device(trained_ddnn.config.num_devices)
        assert per_device == pytest.approx(engine.communication_bytes(central))

    def test_local_exits_have_lower_latency(self, trained_ddnn, tiny_test):
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8)
        result = runtime.run(tiny_test)
        latencies = result.latencies_s
        names = np.array(result.exit_names_per_sample)
        if (names == "local").any() and (names == "cloud").any():
            assert latencies[names == "local"].mean() < latencies[names == "cloud"].mean()

    def test_threshold_one_sends_nothing_to_cloud(self, trained_ddnn, tiny_test):
        deployment = partition_ddnn(trained_ddnn)
        runtime = HierarchyRuntime(deployment, 1.0)
        result = runtime.run(tiny_test)
        assert result.local_exit_fraction == 1.0
        for device in deployment.devices:
            assert deployment.fabric.bytes_from(device.name) == pytest.approx(
                len(tiny_test) * device.summary_bytes()
            )

    def test_failed_device_sends_nothing(self, trained_ddnn, tiny_test):
        deployment = partition_ddnn(trained_ddnn)
        runtime = HierarchyRuntime(deployment, 0.8, fault_plan=FaultPlan(failed_devices={0}))
        result = runtime.run(tiny_test)
        assert deployment.fabric.bytes_from(deployment.devices[0].name) == 0.0
        assert 0.0 <= result.accuracy() <= 1.0

    def test_telemetry_summary(self, trained_ddnn, tiny_test):
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8)
        result = runtime.run(tiny_test)
        summary = result.telemetry.summary()
        assert summary.num_samples == len(tiny_test)
        assert sum(summary.exit_fractions.values()) == pytest.approx(1.0)
        assert summary.accuracy == pytest.approx(result.accuracy())
        assert summary.mean_latency_s > 0
        assert summary.total_bytes == pytest.approx(result.bytes_per_sample.sum())

    def test_empty_telemetry_summary(self):
        summary = Telemetry().summary()
        assert summary.num_samples == 0
        assert summary.accuracy is None

    def test_telemetry_records(self):
        telemetry = Telemetry()
        telemetry.record(SampleTrace(0, 1, "local", 0.01, 12.0, 0.2, correct=True))
        assert len(telemetry) == 1

    def test_threshold_validation(self, trained_ddnn):
        with pytest.raises(ValueError):
            HierarchyRuntime(partition_ddnn(trained_ddnn), [0.1, 0.2, 0.3, 0.4])


class TestEdgeRuntime:
    def test_edge_topology_runtime_matches_central(self, tiny_train, tiny_test):
        from repro.core import DDNNConfig, DDNNTopology, DDNNTrainer, TrainingConfig, build_ddnn

        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
            seed=5,
        )
        model = build_ddnn(config)
        DDNNTrainer(model, TrainingConfig(epochs=2, batch_size=32, seed=0)).fit(tiny_train)
        model.eval()
        central = StagedInferenceEngine(model, [0.7, 0.8]).run(tiny_test)
        deployment = partition_ddnn(model)
        assert len(deployment.edges) == 1
        distributed = HierarchyRuntime(deployment, [0.7, 0.8]).run(tiny_test)
        np.testing.assert_array_equal(central.predictions, distributed.predictions)
        assert central.exit_fraction("edge") == pytest.approx(distributed.exit_fraction("edge"))
