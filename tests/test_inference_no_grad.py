"""Regression: inference-time forwards must never record an autograd graph.

Every serving/inference entry point — ``ExitCascade.run_model``,
``StagedInferenceEngine``, ``DDNNServer.process_batch`` (and the
shed-to-local fast path), ``HierarchyRuntime`` and the baselines — must run
its forwards under ``no_grad()``.  A graph recorded at inference time leaks
memory linearly in the request count, which is fatal for a long-lived
server, so this is pinned by spying on the forwards and asserting that no
``Tensor`` parents are recorded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.individual import IndividualDeviceModel
from repro.core.cascade import ExitCascade
from repro.core.ddnn import DDNN, build_ddnn
from repro.core.inference import StagedInferenceEngine
from repro.hierarchy.partition import partition_ddnn
from repro.hierarchy.runtime import HierarchyRuntime
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.serving import BatchingPolicy, DDNNServer, admission_policy


@pytest.fixture()
def model():
    return build_ddnn(
        num_devices=2, device_filters=2, cloud_filters=4, cloud_conv_blocks=1,
        cloud_hidden_units=0, seed=0,
    )


@pytest.fixture()
def views(model):
    rng = np.random.default_rng(0)
    return rng.normal(size=(6, model.config.num_devices, 3, 32, 32))


@pytest.fixture()
def forward_spy(monkeypatch):
    """Record (grad_enabled, output) for every DDNN forward call."""
    records = []
    original = DDNN.forward

    def spy(self, inputs):
        output = original(self, inputs)
        records.append((is_grad_enabled(), output))
        return output

    monkeypatch.setattr(DDNN, "forward", spy)
    return records


def _assert_graph_free(records):
    assert records, "spy recorded no forwards"
    for grad_enabled, output in records:
        assert not grad_enabled, "inference forward ran with autograd enabled"
        for logits in output.exit_logits:
            assert not logits.requires_grad
            assert logits._parents == ()
            assert logits._backward is None


def test_run_model_records_no_graph(model, views, forward_spy):
    ExitCascade.for_model(model, 0.8).run_model(model, views, batch_size=3)
    _assert_graph_free(forward_spy)


def test_staged_inference_records_no_graph(model, views, forward_spy):
    StagedInferenceEngine(model, 0.8, batch_size=4).run(views)
    _assert_graph_free(forward_spy)


def test_server_process_batch_records_no_graph(model, views, forward_spy):
    server = DDNNServer(model, 0.8, policy=BatchingPolicy(max_batch_size=4, max_wait_s=0.0))
    for sample in views:
        server.submit(sample, client_id="spy")
    server.run_until_drained()
    _assert_graph_free(forward_spy)


def test_server_shed_to_local_records_no_graph(model, views, forward_spy):
    server = DDNNServer(model, 0.8, capacity=1, admission=admission_policy("shed-local"))
    for sample in views:
        server.offer(sample, client_id="spy")
    server.run_until_drained()
    _assert_graph_free(forward_spy)


def test_hierarchy_runtime_records_no_graph(model, views):
    from repro.datasets.mvmc import DEFAULT_DEVICE_PROFILES, MVMCDataset

    labels = np.zeros(len(views), dtype=np.int64)
    device_labels = np.zeros((len(views), views.shape[1]), dtype=np.int64)
    dataset = MVMCDataset(
        images=np.clip(views, 0.0, 1.0),
        labels=labels,
        device_labels=device_labels,
        profiles=DEFAULT_DEVICE_PROFILES[: views.shape[1]],
    )
    runtime = HierarchyRuntime(partition_ddnn(model), 0.8, batch_size=4)
    grad_flags = []
    for device in runtime.deployment.devices:
        original = device.branch.forward

        def spy(inputs, _original=original):
            grad_flags.append(is_grad_enabled())
            return _original(inputs)

        device.branch.forward = spy
    runtime.run(dataset)
    assert grad_flags and not any(grad_flags)


def test_individual_baseline_predict_records_no_graph():
    baseline = IndividualDeviceModel(filters=2, seed=0)
    flags = []
    original = baseline.classifier.forward

    def spy(inputs, _original=original):
        flags.append((is_grad_enabled(), inputs.requires_grad, inputs._parents))
        return _original(inputs)

    baseline.classifier.forward = spy
    baseline.predict(np.random.default_rng(1).normal(size=(4, 3, 32, 32)))
    assert flags
    for grad_enabled, requires_grad, parents in flags:
        assert not grad_enabled
        assert not requires_grad
        assert parents == ()


def test_compiled_serving_never_touches_tensors(model, views, monkeypatch):
    """The compiled path must not construct autograd Tensors at all."""
    server = DDNNServer(model, 0.8, compile=True)
    constructed = []
    original_init = Tensor.__init__

    def spy(self, data, requires_grad=False, name=None):
        constructed.append(1)
        original_init(self, data, requires_grad=requires_grad, name=name)

    # Compile (and warm the plan) first, then watch the serving loop.
    server.cascade.compiled_for(model)(views[:1])
    monkeypatch.setattr(Tensor, "__init__", spy)
    for sample in views:
        server.submit(sample, client_id="spy")
    server.run_until_drained()
    assert not constructed, "compiled serving built autograd Tensors"
