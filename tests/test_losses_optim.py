"""Tests for loss functions and optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Parameter, Tensor, joint_exit_loss, softmax_cross_entropy
from repro.nn.optim import Optimizer


class TestSoftmaxCrossEntropyLoss:
    def test_matches_functional_implementation(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
        targets = np.array([0, 1, 2, 0])
        from repro.nn import functional as F

        assert softmax_cross_entropy(logits, targets).item() == pytest.approx(
            F.softmax_cross_entropy(logits, targets).item()
        )


class TestJointExitLoss:
    def test_equal_weights_sum_exit_losses(self):
        logits_a = Tensor(np.zeros((2, 3)))
        logits_b = Tensor(np.zeros((2, 3)))
        targets = np.array([0, 1])
        loss = joint_exit_loss([logits_a, logits_b], targets)
        assert loss.item() == pytest.approx(2 * np.log(3))

    def test_custom_weights(self):
        logits = Tensor(np.zeros((2, 3)))
        targets = np.array([0, 1])
        loss = joint_exit_loss([logits, logits], targets, exit_weights=[2.0, 0.5])
        assert loss.item() == pytest.approx(2.5 * np.log(3))

    def test_gradients_flow_to_all_exits(self):
        logits_a = Tensor(np.random.default_rng(0).standard_normal((3, 3)), requires_grad=True)
        logits_b = Tensor(np.random.default_rng(1).standard_normal((3, 3)), requires_grad=True)
        joint_exit_loss([logits_a, logits_b], np.array([0, 1, 2])).backward()
        assert logits_a.grad is not None
        assert logits_b.grad is not None

    def test_zero_weight_silences_an_exit(self):
        logits_a = Tensor(np.random.default_rng(0).standard_normal((3, 3)), requires_grad=True)
        logits_b = Tensor(np.random.default_rng(1).standard_normal((3, 3)), requires_grad=True)
        joint_exit_loss([logits_a, logits_b], np.array([0, 1, 2]), exit_weights=[1.0, 0.0]).backward()
        np.testing.assert_allclose(logits_b.grad, np.zeros((3, 3)))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            joint_exit_loss([], np.array([0]))
        with pytest.raises(ValueError):
            joint_exit_loss([Tensor(np.zeros((1, 2)))], np.array([0]), exit_weights=[1.0, 2.0])


class TestOptimizers:
    def test_base_optimizer_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([])
        with pytest.raises(NotImplementedError):
            Optimizer([Parameter(np.zeros(1))]).step()

    def test_sgd_descends_quadratic(self):
        weight = Parameter(np.array([5.0]))
        optimizer = SGD([weight], lr=0.1)
        for _ in range(100):
            loss = (Tensor(weight.data) * 0).sum()  # placeholder to satisfy linters
            optimizer.zero_grad()
            loss = (weight * weight).sum()
            loss.backward()
            optimizer.step()
        assert abs(weight.data[0]) < 1e-3

    def test_sgd_momentum_moves_faster_than_plain(self):
        def final_value(momentum: float) -> float:
            weight = Parameter(np.array([5.0]))
            optimizer = SGD([weight], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                (weight * weight).sum().backward()
                optimizer.step()
            return abs(float(weight.data[0]))

        assert final_value(0.9) < final_value(0.0)

    def test_sgd_weight_decay_shrinks_weights(self):
        weight = Parameter(np.array([1.0]))
        optimizer = SGD([weight], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (weight * 0.0).sum().backward()
        optimizer.step()
        assert weight.data[0] < 1.0

    def test_adam_converges_on_regression(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 3))
        true_w = np.array([[1.0, -2.0, 0.5]])
        y = x @ true_w.T
        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            out = layer(Tensor(x))
            loss = ((out - Tensor(y)) ** 2).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_adam_skips_parameters_without_gradients(self):
        used = Parameter(np.array([1.0]))
        unused = Parameter(np.array([2.0]))
        optimizer = Adam([used, unused], lr=0.1)
        (used * used).sum().backward()
        optimizer.step()
        assert unused.data[0] == 2.0
        assert used.data[0] != 1.0

    def test_adam_weight_clipping(self):
        weight = Parameter(np.array([0.99]))
        optimizer = Adam([weight], lr=1.0, clip_weights=1.0)
        optimizer.zero_grad()
        (weight * -10.0).sum().backward()
        optimizer.step()
        assert abs(weight.data[0]) <= 1.0

    def test_zero_grad_resets_gradients(self):
        weight = Parameter(np.array([1.0]))
        optimizer = SGD([weight], lr=0.1)
        (weight * 2).sum().backward()
        optimizer.zero_grad()
        assert weight.grad is None
