"""Unit tests for conv/pool/softmax functional operations."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import Tensor


class TestIm2Col:
    def test_roundtrip_with_col2im_counts_overlaps(self):
        images = np.arange(2 * 1 * 4 * 4, dtype=float).reshape(2, 1, 4, 4)
        columns, out_h, out_w = F.im2col(images, 3, 3, stride=1, padding=1)
        assert columns.shape == (2, 9, out_h * out_w)
        reconstructed = F.col2im(columns, images.shape, 3, 3, stride=1, padding=1)
        # Each pixel is reconstructed once per window that covers it.
        counts = F.col2im(
            np.ones_like(columns), images.shape, 3, 3, stride=1, padding=1
        )
        np.testing.assert_allclose(reconstructed, images * counts)

    def test_output_size_formula(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(16, 3, 2, 1) == 8
        assert F.conv_output_size(5, 3, 1, 0) == 3


class TestConv2d:
    def test_identity_kernel_preserves_input(self):
        images = np.random.default_rng(0).standard_normal((2, 1, 5, 5))
        kernel = np.zeros((1, 1, 3, 3))
        kernel[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(images), Tensor(kernel), stride=1, padding=1)
        np.testing.assert_allclose(out.data, images)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(1)
        images = rng.standard_normal((1, 2, 4, 4))
        kernel = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(images), Tensor(kernel), stride=1, padding=1).data
        padded = np.pad(images, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((1, 3, 4, 4))
        for oc in range(3):
            for y in range(4):
                for x in range(4):
                    expected[0, oc, y, x] = np.sum(
                        padded[0, :, y : y + 3, x : x + 3] * kernel[oc]
                    )
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_bias_added_per_channel(self):
        images = np.zeros((1, 1, 3, 3))
        kernel = np.zeros((2, 1, 3, 3))
        bias = np.array([1.5, -2.0])
        out = F.conv2d(Tensor(images), Tensor(kernel), Tensor(bias), padding=1).data
        np.testing.assert_allclose(out[0, 0], np.full((3, 3), 1.5))
        np.testing.assert_allclose(out[0, 1], np.full((3, 3), -2.0))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_output_shape_with_stride(self):
        out = F.conv2d(
            Tensor(np.zeros((2, 3, 8, 8))), Tensor(np.zeros((5, 3, 3, 3))), stride=2, padding=1
        )
        assert out.shape == (2, 5, 4, 4)


class TestPooling:
    def test_max_pool_picks_window_maximum(self):
        images = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = F.max_pool2d(Tensor(images), 2, stride=2)
        assert out.shape == (1, 1, 1, 1)
        assert out.data[0, 0, 0, 0] == 4.0

    def test_max_pool_paper_geometry_halves_spatial_size(self):
        out = F.max_pool2d(Tensor(np.zeros((2, 4, 32, 32))), 3, stride=2, padding=1)
        assert out.shape == (2, 4, 16, 16)

    def test_max_pool_ignores_padding_values(self):
        images = -np.ones((1, 1, 4, 4))
        out = F.max_pool2d(Tensor(images), 3, stride=2, padding=1)
        assert out.data.max() == -1.0  # padding (-inf) never wins

    def test_avg_pool_matches_mean(self):
        images = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(images), 2, stride=2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_output_shape_with_padding(self):
        out = F.avg_pool2d(Tensor(np.zeros((1, 2, 16, 16))), 3, stride=2, padding=1)
        assert out.shape == (1, 2, 8, 8)


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((4, 6)))
        probabilities = F.softmax(logits).data
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(4))
        assert (probabilities >= 0).all()

    def test_softmax_is_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    def test_softmax_handles_large_logits(self):
        probabilities = F.softmax(Tensor(np.array([[1000.0, 0.0]]))).data
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] == pytest.approx(1.0)


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.softmax_cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_perfect_prediction_gives_near_zero_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_normalize_by_classes_scales_loss(self):
        logits = Tensor(np.zeros((2, 4)))
        targets = np.array([0, 1])
        base = F.softmax_cross_entropy(logits, targets).item()
        scaled = F.softmax_cross_entropy(logits, targets, normalize_by_classes=True).item()
        assert scaled == pytest.approx(base / 4)

    def test_class_weights_scale_per_sample_loss(self):
        logits = Tensor(np.zeros((2, 2)))
        targets = np.array([0, 1])
        weighted = F.softmax_cross_entropy(
            logits, targets, class_weights=np.array([2.0, 0.0])
        ).item()
        assert weighted == pytest.approx(np.log(2))

    def test_target_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.softmax_cross_entropy(Tensor(np.zeros((3, 2))), np.array([0, 1]))
