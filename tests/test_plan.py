"""Tests for PartitionPlan, the partition shim, and plan-aware sections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DDNNConfig, DDNNTopology, build_ddnn
from repro.hierarchy import (
    AutoscalePolicy,
    HierarchyRuntime,
    LinkSpec,
    PartitionPlan,
    build_tier_sections,
    partition_ddnn,
)
from repro.hierarchy.network import NetworkFabric
from repro.serving.workers import (
    SimulatedWorkerPool,
    ThreadPoolWorkerPool,
)
from repro.serving.clock import EventLoop


def _link_table(deployment):
    return sorted(
        (link.source, link.destination, link.bandwidth_bytes_per_s, link.latency_s)
        for link in deployment.fabric.links()
    )


def _node_table(deployment):
    nodes = list(deployment.devices) + list(deployment.edges) + [deployment.cloud]
    return sorted((node.name, node.ops_per_second) for node in nodes)


class TestPartitionShim:
    def test_materialize_matches_partition_ddnn_wiring(self, trained_ddnn):
        via_shim = partition_ddnn(trained_ddnn)
        via_plan = PartitionPlan(trained_ddnn).materialize()
        assert _link_table(via_shim) == _link_table(via_plan)
        assert _node_table(via_shim) == _node_table(via_plan)
        assert via_shim.device_names == via_plan.device_names
        assert (via_shim.local_aggregator is None) == (via_plan.local_aggregator is None)

    def test_materialize_matches_partition_ddnn_inference(self, trained_ddnn, tiny_test):
        thresholds = 0.8
        results = []
        for deployment in (partition_ddnn(trained_ddnn), PartitionPlan(trained_ddnn).materialize()):
            runtime = HierarchyRuntime(deployment, thresholds)
            result = runtime.run(tiny_test)
            results.append(
                (
                    tuple(result.predictions),
                    tuple(result.exit_names_per_sample),
                    tuple(result.bytes_per_sample),
                )
            )
        assert results[0] == results[1]

    def test_custom_specs_flow_through_shim(self, trained_ddnn):
        uplink = LinkSpec(bandwidth_bytes_per_s=1234.0, latency_s=0.5)
        deployment = partition_ddnn(trained_ddnn, uplink=uplink, device_ops_per_second=99.0)
        links = [l for l in deployment.fabric.links() if l.destination == "cloud"]
        assert links and all(l.bandwidth_bytes_per_s == 1234.0 for l in links)
        assert all(device.ops_per_second == 99.0 for device in deployment.devices)


class TestPlanValidation:
    def test_edge_exit_requires_edge_tier(self, trained_ddnn):
        with pytest.raises(ValueError, match="no edge tier"):
            PartitionPlan(trained_ddnn, edge_exit=True)

    def test_replicas_and_worker_counts_positive(self, trained_ddnn):
        with pytest.raises(ValueError, match="replicas"):
            PartitionPlan(trained_ddnn, replicas=0)
        with pytest.raises(ValueError, match="worker counts"):
            PartitionPlan(trained_ddnn, workers_per_tier=0)

    def test_worker_counts_broadcast_and_length_check(self, trained_ddnn):
        assert PartitionPlan(trained_ddnn, workers_per_tier=3).worker_counts() == (3, 3)
        assert PartitionPlan(trained_ddnn, workers_per_tier=[1, 2]).worker_counts() == (1, 2)
        with pytest.raises(ValueError, match="entries"):
            PartitionPlan(trained_ddnn, workers_per_tier=[1, 2, 3])

    def test_with_changes_copies(self, trained_ddnn):
        plan = PartitionPlan(trained_ddnn)
        moved = plan.with_changes(local_exit=False, workers_per_tier=2)
        assert plan.resolved_local_exit() is True
        assert moved.resolved_local_exit() is False
        assert moved.worker_counts() == (2, 2)

    def test_autoscale_policy_validation(self):
        with pytest.raises(ValueError, match="low_watermark"):
            AutoscalePolicy(low_watermark=4, high_watermark=4)
        with pytest.raises(ValueError, match="max_workers"):
            AutoscalePolicy(min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="step"):
            AutoscalePolicy(step=0)

    def test_autoscaled_flag_and_broadcast(self, trained_ddnn):
        plan = PartitionPlan(trained_ddnn)
        assert not plan.autoscaled
        policy = AutoscalePolicy()
        scaled = plan.with_changes(autoscale=policy)
        assert scaled.autoscaled
        assert scaled.autoscale_policies() == (policy, policy)


class TestNodeByName:
    def test_lookup_and_error_lists_known_names(self, trained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        assert deployment.node_by_name("cloud") is deployment.cloud
        assert deployment.node_by_name("device-0") is deployment.devices[0]
        assert (
            deployment.node_by_name("local-aggregator") is deployment.local_aggregator
        )
        with pytest.raises(KeyError, match="known nodes: .*cloud.*device-0"):
            deployment.node_by_name("nope")


class TestLinkSpec:
    def test_connect_registers_link_with_spec_params(self):
        fabric = NetworkFabric()
        spec = LinkSpec(bandwidth_bytes_per_s=10.0, latency_s=0.25)
        link = spec.connect(fabric, "a", "b")
        assert (link.bandwidth_bytes_per_s, link.latency_s) == (10.0, 0.25)
        assert fabric.links() == [link]

    def test_retune_mutates_in_place(self):
        fabric = NetworkFabric()
        link = LinkSpec(10.0, 0.25).connect(fabric, "a", "b")
        LinkSpec(20.0, 0.125).retune(link)
        assert (link.bandwidth_bytes_per_s, link.latency_s) == (20.0, 0.125)
        assert fabric.links() == [link]  # same object, stats preserved


class TestPlanSections:
    def test_default_plan_matches_model_structure(self, trained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        default = build_tier_sections(deployment)
        planned = build_tier_sections(deployment, plan=PartitionPlan(trained_ddnn))
        assert [(s.tier_name, s.exit_index, s.exit_name) for s in default] == [
            (s.tier_name, s.exit_index, s.exit_name) for s in planned
        ]

    def test_disabled_local_exit_keeps_model_numbering(self, trained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        plan = PartitionPlan(trained_ddnn, local_exit=False)
        sections = build_tier_sections(deployment, plan=plan)
        assert [(s.tier_name, s.exit_index) for s in sections] == [
            ("devices", None),
            ("cloud", 1),  # cloud keeps the model's exit index
        ]
        assert sections[0].exit_name == ""

    def test_plan_model_mismatch_rejected(self, trained_ddnn, untrained_ddnn):
        deployment = partition_ddnn(trained_ddnn)
        with pytest.raises(ValueError, match="deployment's model"):
            build_tier_sections(deployment, plan=PartitionPlan(untrained_ddnn))

    def test_edge_exit_toggle_three_tier(self, tiny_train):
        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
            seed=5,
        )
        model = build_ddnn(config)
        deployment = partition_ddnn(model)
        plan = PartitionPlan(model, edge_exit=False)
        sections = build_tier_sections(deployment, plan=plan)
        assert [(s.tier_name, s.exit_index) for s in sections] == [
            ("devices", 0),
            ("edge", None),
            ("cloud", 2),
        ]
        # An exit-less edge tier still carries features for the cloud.
        views = np.random.default_rng(0).normal(size=(2, 4, 3, 32, 32))
        result = sections[0].process(views)
        transfer = sections[0].offload(result.carry, np.array([0, 1]))
        from repro.hierarchy.sections import stack_rows

        edge_result = sections[1].process(stack_rows(transfer.payloads))
        assert edge_result.logits is None
        assert edge_result.carry is not None


class TestWorkerPoolResize:
    def test_grow_appends_free_workers_with_unique_indices(self):
        pool = SimulatedWorkerPool(EventLoop(), 2)
        assert pool.resize(4, now=1.0) == 4
        assert [w.index for w in pool.workers] == [0, 1, 2, 3]
        assert all(w.busy_until <= 1.0 for w in pool.workers[2:])

    def test_shrink_skips_busy_workers(self):
        pool = SimulatedWorkerPool(EventLoop(), 3)
        pool.workers[1].busy_until = 10.0  # mid-batch
        pool.workers[2].busy_until = 10.0  # mid-batch
        assert pool.resize(1, now=0.0) == 2  # only the free slot is removable
        assert [w.index for w in pool.workers] == [1, 2]
        # Once a straggler finishes, the next resize completes the shrink.
        pool.workers[0].busy_until = 0.0
        assert pool.resize(1, now=0.0) == 1
        assert [w.index for w in pool.workers] == [2]

    def test_grow_requires_matching_plans(self):
        pool = SimulatedWorkerPool(EventLoop(), 1)
        with pytest.raises(ValueError, match="one bundle per added worker"):
            pool.resize(3, now=0.0, worker_plans=["only-one"])

    def test_thread_pool_resize_recreates_executor(self):
        events = EventLoop()
        pool = ThreadPoolWorkerPool(events, 1)
        try:
            first = pool._executor
            assert pool.resize(2, now=0.0) == 2
            assert pool._executor is not first
            # The resized pool still executes and posts completions.
            worker = pool.acquire(0.0)
            done = []
            pool.execute(worker, lambda plans: 41 + 1, lambda r: 0.0, lambda r, t: done.append(r))
            events.run()
            assert done == [42]
        finally:
            pool.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            pool.resize(3, now=0.0)
