"""Tests for binary layers and the fused FC / ConvP blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BinaryActivation,
    BinaryConv2d,
    BinaryLinear,
    ConvPBlock,
    FCBlock,
    Tensor,
    binarize,
    binary_memory_bytes,
    block_memory_bytes,
)


class TestBinarize:
    def test_values_are_plus_minus_one(self):
        out = binarize(Tensor(np.array([-3.0, -0.1, 0.0, 0.4, 7.0])))
        np.testing.assert_allclose(out.data, [-1.0, -1.0, 1.0, 1.0, 1.0])

    def test_straight_through_gradient_clipped(self):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        binarize(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0])

    def test_custom_clip_value(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        binarize(x, clip_value=2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_binary_activation_module(self):
        out = BinaryActivation()(Tensor(np.array([[0.3, -0.3]])))
        np.testing.assert_allclose(out.data, [[1.0, -1.0]])


class TestBinaryLinear:
    def test_forward_uses_binarized_weights(self):
        layer = BinaryLinear(3, 2, bias=False, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((4, 3))
        expected = x @ np.where(layer.weight.data >= 0, 1.0, -1.0).T
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_latent_weights_receive_gradients(self):
        layer = BinaryLinear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == (2, 3)

    def test_memory_accounting_one_bit_per_weight(self):
        layer = BinaryLinear(8, 4, bias=False)
        assert layer.memory_bytes() == 8 * 4 / 8
        with_bias = BinaryLinear(8, 4, bias=True)
        assert with_bias.memory_bytes() == 8 * 4 / 8 + 4 * 4


class TestBinaryConv2d:
    def test_forward_uses_binarized_kernel(self):
        layer = BinaryConv2d(1, 1, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((1, 1, 4, 4))
        out = layer(Tensor(x))
        assert out.shape == (1, 1, 4, 4)
        # Recompute with explicit ±1 kernel.
        import repro.nn.functional as F

        binary_kernel = np.where(layer.weight.data >= 0, 1.0, -1.0)
        expected = F.conv2d(Tensor(x), Tensor(binary_kernel), stride=1, padding=1).data
        np.testing.assert_allclose(out.data, expected)

    def test_memory_bytes(self):
        layer = BinaryConv2d(3, 4, kernel_size=3)
        assert layer.memory_bytes() == 3 * 4 * 9 / 8

    def test_binary_memory_helper(self):
        assert binary_memory_bytes(80, bias_count=2) == 10 + 8


class TestFCBlock:
    def test_binary_output_is_sign_valued(self):
        block = FCBlock(6, 4, rng=np.random.default_rng(0))
        out = block(Tensor(np.random.default_rng(1).standard_normal((5, 6))))
        assert set(np.unique(out.data)).issubset({-1.0, 1.0})

    def test_final_block_returns_float_scores(self):
        block = FCBlock(6, 3, final=True, rng=np.random.default_rng(0))
        out = block(Tensor(np.random.default_rng(1).standard_normal((5, 6))))
        assert out.shape == (5, 3)
        assert not set(np.unique(out.data)).issubset({-1.0, 1.0})

    def test_float_variant_uses_relu(self):
        block = FCBlock(6, 4, binary=False, rng=np.random.default_rng(0))
        out = block(Tensor(np.random.default_rng(1).standard_normal((5, 6))))
        assert (out.data >= 0).all()

    def test_memory_is_dominated_by_binary_weights(self):
        block = FCBlock(256, 3)
        # 256*3 binary weights = 96 B, plus bias + batch-norm floats.
        assert block.memory_bytes() < 256 * 3 * 4
        assert block.memory_bytes() >= 256 * 3 / 8


class TestConvPBlock:
    def test_output_shape_halves_spatial_size(self):
        block = ConvPBlock(3, 4, rng=np.random.default_rng(0))
        out = block(Tensor(np.random.default_rng(1).standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 4, 16, 16)

    def test_output_is_binary(self):
        block = ConvPBlock(3, 2, rng=np.random.default_rng(0))
        out = block(Tensor(np.random.default_rng(1).standard_normal((1, 3, 16, 16))))
        assert set(np.unique(out.data)).issubset({-1.0, 1.0})

    def test_output_spatial_size_helper(self):
        block = ConvPBlock(3, 4)
        assert block.output_spatial_size(32) == 16
        assert block.output_spatial_size(16) == 8
        assert block.output_spatial_size(8) == 4

    def test_float_variant(self):
        block = ConvPBlock(3, 4, binary=False, rng=np.random.default_rng(0))
        out = block(Tensor(np.random.default_rng(1).standard_normal((1, 3, 8, 8))))
        assert (out.data >= 0).all()

    def test_paper_device_block_fits_under_2kb(self):
        """The paper states every end-device configuration stays below 2 KB."""
        for filters in (1, 2, 4, 8):
            block = ConvPBlock(3, filters)
            fc = FCBlock(filters * 16 * 16, 3, final=True)
            assert block.memory_bytes() + fc.memory_bytes() < 2048

    def test_block_memory_counts_batch_norm_floats(self):
        block = ConvPBlock(3, 4)
        conv_bytes = 4 * 3 * 9 / 8
        batch_norm_bytes = 4 * 4 * 4  # gamma, beta, running mean, running var
        assert block_memory_bytes(block) == pytest.approx(conv_bytes + batch_norm_bytes)
