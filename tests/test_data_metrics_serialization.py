"""Tests for data utilities, metrics and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    ArrayDataset,
    DataLoader,
    Linear,
    accuracy,
    confusion_matrix,
    load_module,
    load_state,
    per_class_accuracy,
    save_module,
    save_state,
    train_test_split,
)
from repro.nn.layers import BatchNorm1d, Sequential


class TestArrayDataset:
    def test_indexing_returns_aligned_tuples(self):
        dataset = ArrayDataset(np.arange(10), np.arange(10) * 2)
        x, y = dataset[3]
        assert x == 3 and y == 6
        assert len(dataset) == 10

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(5), np.arange(6))

    def test_requires_at_least_one_array(self):
        with pytest.raises(ValueError):
            ArrayDataset()


class TestDataLoader:
    def test_batches_cover_all_samples(self):
        dataset = ArrayDataset(np.arange(10))
        loader = DataLoader(dataset, batch_size=3)
        seen = np.concatenate([batch[0] for batch in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(ArrayDataset(np.arange(10)), batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert all(len(batch[0]) == 3 for batch in loader)

    def test_shuffle_changes_order_but_not_content(self):
        data = np.arange(32)
        loader = DataLoader(
            ArrayDataset(data), batch_size=32, shuffle=True, rng=np.random.default_rng(0)
        )
        (batch,) = [b[0] for b in loader]
        assert not np.array_equal(batch, data)
        np.testing.assert_array_equal(np.sort(batch), data)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(4)), batch_size=0)


class TestTrainTestSplit:
    def test_split_sizes(self):
        (train_x,), (test_x,) = train_test_split([np.arange(100)], test_fraction=0.2, seed=0)
        assert len(train_x) == 80 and len(test_x) == 20
        assert set(train_x) | set(test_x) == set(range(100))

    def test_stratified_split_preserves_class_balance(self):
        labels = np.array([0] * 80 + [1] * 20)
        (_, train_y), (_, test_y) = train_test_split(
            [np.arange(100), labels], test_fraction=0.25, seed=1, stratify=labels
        )
        assert np.sum(test_y == 1) == 5
        assert np.sum(train_y == 1) == 15

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split([np.arange(4)], test_fraction=1.5)
        with pytest.raises(ValueError):
            train_test_split([], test_fraction=0.5)


class TestMetrics:
    def test_accuracy_from_labels_and_logits(self):
        targets = np.array([0, 1, 2])
        assert accuracy(np.array([0, 1, 1]), targets) == pytest.approx(2 / 3)
        logits = np.array([[9, 0, 0], [0, 9, 0], [0, 9, 0]])
        assert accuracy(logits, targets) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0, 1, 2]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), num_classes=3)
        np.testing.assert_array_equal(matrix, [[1, 0, 0], [0, 1, 0], [0, 1, 1]])

    def test_per_class_accuracy_handles_absent_classes(self):
        values = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), num_classes=2)
        assert values[0] == 1.0
        assert np.isnan(values[1])


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"a": np.arange(4.0), "b": np.ones((2, 2))}
        path = tmp_path / "state.npz"
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], state["a"])

    def test_module_roundtrip_preserves_outputs(self, tmp_path):
        from repro.nn import Tensor

        model = Sequential(Linear(4, 8, rng=np.random.default_rng(0)), BatchNorm1d(8))
        x = np.random.default_rng(1).standard_normal((5, 4))
        model(Tensor(x))  # populate batch-norm running stats
        model.eval()
        expected = model(Tensor(x)).data

        path = tmp_path / "model.npz"
        save_module(model, path)
        restored = Sequential(Linear(4, 8, rng=np.random.default_rng(7)), BatchNorm1d(8))
        load_module(restored, path)
        restored.eval()
        np.testing.assert_allclose(restored(Tensor(x)).data, expected)
