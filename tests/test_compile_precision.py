"""Precision compute modes of the compiled inference stack (PR 9).

Covers the three mode guarantees (float64 exact, float32 tolerance-with-
routing-agreement, bitpacked bit-identical), the XNOR+popcount packed ops
across conv geometries, oracle-vs-engine parity per mode, the
``(model, precision)``-keyed plan cache, and precision validation in every
consumer that grew the knob (cascade, engine, server, fabric, partition
plan, hierarchy runtime).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import (
    PRECISIONS,
    compile_ddnn,
    compile_plan,
    compiled_plan_for,
    invalidate_plan,
    precision_dtype,
    routing_agreement,
    verify_compiled,
)
from repro.compile.cache import cached_plan_count
from repro.compile.ops import PackedConvOp, PackedLinearOp
from repro.core.cascade import ExitCascade
from repro.core.inference import StagedInferenceEngine
from repro.core.oracle import ExitOracle
from repro.nn import BinaryActivation, BinaryConv2d, BinaryLinear
from repro.nn.layers import Flatten, Sequential
from repro.nn.tensor import Tensor, no_grad

RNG = np.random.default_rng(23)


def eager_forward(module, x: np.ndarray) -> np.ndarray:
    module.eval()
    with no_grad():
        return module(Tensor(x)).data


def sign_input(shape) -> np.ndarray:
    """A ±1 input array (the packed kernels' precondition)."""
    return np.where(RNG.random(shape) < 0.5, -1.0, 1.0)


# --------------------------------------------------------------------------- #
# Mode plumbing basics
# --------------------------------------------------------------------------- #
class TestPrecisionDtypes:
    def test_modes_and_carrier_dtypes(self):
        assert PRECISIONS == ("float64", "float32", "bitpacked")
        assert precision_dtype("float64") == np.float64
        assert precision_dtype("float32") == np.float32
        # bitpacked carries non-packed ops in float64, so the exactness
        # guarantee holds end to end.
        assert precision_dtype("bitpacked") == np.float64

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown precision"):
            precision_dtype("float16")

    def test_plan_buffers_use_mode_dtype(self):
        conv = BinaryConv2d(2, 3, kernel_size=3, padding=1, rng=RNG)
        x = sign_input((2, 2, 8, 8))
        for mode in PRECISIONS:
            plan = compile_plan(Sequential(conv), precision=mode)
            assert plan(x).dtype == precision_dtype(mode)


# --------------------------------------------------------------------------- #
# Packed XNOR+popcount kernels: bit-identical across conv geometry
# --------------------------------------------------------------------------- #
class TestPackedKernels:
    @pytest.mark.parametrize(
        "stride,padding,batch",
        [(1, 0, 1), (1, 1, 1), (1, 2, 4), (2, 0, 3), (2, 1, 1), (3, 2, 2)],
    )
    def test_packed_conv_bit_identical_across_geometry(self, stride, padding, batch):
        conv = BinaryConv2d(3, 5, kernel_size=3, stride=stride, padding=padding, rng=RNG)
        stack = Sequential(conv)
        x = sign_input((batch, 3, 12, 12))
        packed = compile_plan(stack, precision="bitpacked", input_signed=True)
        exact = compile_plan(stack, precision="float64", input_signed=True)
        assert any(isinstance(op, PackedConvOp) for op in packed.ops)
        np.testing.assert_array_equal(packed(x), exact(x))
        np.testing.assert_array_equal(packed(x), eager_forward(stack, x))

    @pytest.mark.parametrize("features,batch", [(17, 1), (64, 3), (130, 2)])
    def test_packed_linear_bit_identical_at_word_boundaries(self, features, batch):
        # 17 / 64 / 130 input features: partial word, exact word, two words
        # plus tail — the padding-bit convention must not leak into any.
        stack = Sequential(BinaryLinear(features, 9, rng=RNG))
        x = sign_input((batch, features))
        packed = compile_plan(stack, precision="bitpacked", input_signed=True)
        exact = compile_plan(stack, precision="float64", input_signed=True)
        assert any(isinstance(op, PackedLinearOp) for op in packed.ops)
        np.testing.assert_array_equal(packed(x), exact(x))

    def test_sign_chain_propagates_packing(self):
        # sign -> binary conv -> sign -> binary linear: both GEMMs eligible.
        stack = Sequential(
            BinaryConv2d(2, 4, kernel_size=3, padding=1, rng=RNG),
            BinaryActivation(),
            Flatten(),
            BinaryLinear(4 * 8 * 8, 6, rng=RNG),
        )
        plan = compile_plan(stack, precision="bitpacked", input_signed=True)
        assert any(isinstance(op, PackedLinearOp) for op in plan.ops)
        x = sign_input((2, 2, 8, 8))
        np.testing.assert_array_equal(
            plan(x), compile_plan(stack, precision="float64", input_signed=True)(x)
        )

    def test_unsigned_input_falls_back_to_float(self):
        # Real-valued input cannot be packed; the cost rule must keep the
        # float GEMM and stay exact.
        stack = Sequential(BinaryConv2d(3, 4, kernel_size=3, padding=1, rng=RNG))
        plan = compile_plan(stack, precision="bitpacked", input_signed=False)
        assert not any(isinstance(op, PackedConvOp) for op in plan.ops)
        x = RNG.normal(size=(2, 3, 10, 10))
        np.testing.assert_array_equal(
            plan(x), compile_plan(stack, precision="float64")(x)
        )


# --------------------------------------------------------------------------- #
# verify_compiled: the per-mode guarantees on a real trained DDNN
# --------------------------------------------------------------------------- #
class TestVerifyCompiledModes:
    def test_float64_default_guarantee(self, trained_ddnn, tiny_test):
        compiled = compile_ddnn(trained_ddnn)
        diff = verify_compiled(trained_ddnn, compiled, tiny_test.images)
        assert diff < 1e-6

    def test_float32_tolerance_and_agreement(self, trained_ddnn, tiny_test):
        compiled = compile_ddnn(trained_ddnn, precision="float32")
        diff = verify_compiled(trained_ddnn, compiled, tiny_test.images)
        assert diff < 1e-3  # fp32 tolerance, not fp64 exactness

    def test_bitpacked_bit_identity(self, trained_ddnn, tiny_test):
        compiled = compile_ddnn(trained_ddnn, precision="bitpacked")
        verify_compiled(trained_ddnn, compiled, tiny_test.images)
        reference = compile_ddnn(trained_ddnn, precision="float64")
        packed_out = compiled(tiny_test.images)
        exact_out = reference(tiny_test.images)
        for packed_logits, exact_logits in zip(
            packed_out.exit_logits, exact_out.exit_logits
        ):
            np.testing.assert_array_equal(packed_logits, exact_logits)

    def test_mismatched_precision_argument_rejected(self, trained_ddnn, tiny_test):
        compiled = compile_ddnn(trained_ddnn, precision="float32")
        with pytest.raises(ValueError, match="does not match"):
            verify_compiled(
                trained_ddnn, compiled, tiny_test.images, precision="float64"
            )

    def test_routing_agreement_pooled_grid(self, trained_ddnn, tiny_test):
        logits = np.stack(
            [np.asarray(t.data) for t in _eager_exit_logits(trained_ddnn, tiny_test)]
        )
        assert routing_agreement(logits, logits) == 1.0
        # Flipping one exit's logits hard must drop agreement below 1.
        corrupted = logits.copy()
        corrupted[0] = -corrupted[0]
        assert routing_agreement(logits, corrupted) < 1.0
        with pytest.raises(ValueError, match="same exits"):
            routing_agreement(logits, logits[:-1])


def _eager_exit_logits(model, dataset):
    model.eval()
    with no_grad():
        return model(dataset.images).exit_logits


# --------------------------------------------------------------------------- #
# Oracle vs engine parity per mode
# --------------------------------------------------------------------------- #
class TestOracleEngineParity:
    @pytest.mark.parametrize("mode", PRECISIONS)
    def test_oracle_routes_like_engine(self, trained_ddnn, tiny_test, mode):
        threshold = 0.8
        oracle = ExitOracle.capture(trained_ddnn, tiny_test, precision=mode)
        routed = oracle.route(threshold)
        engine = StagedInferenceEngine(
            trained_ddnn, threshold, compile=True, precision=mode
        )
        result = engine.run(tiny_test)
        np.testing.assert_array_equal(routed.predictions, result.predictions)
        np.testing.assert_array_equal(routed.exit_indices, result.exit_indices)

    def test_exact_modes_route_identically_to_eager(self, trained_ddnn, tiny_test):
        eager = StagedInferenceEngine(trained_ddnn, 0.8).run(tiny_test)
        for mode in ("float64", "bitpacked"):
            compiled = StagedInferenceEngine(
                trained_ddnn, 0.8, compile=True, precision=mode
            ).run(tiny_test)
            np.testing.assert_array_equal(eager.predictions, compiled.predictions)
            np.testing.assert_array_equal(eager.exit_indices, compiled.exit_indices)


# --------------------------------------------------------------------------- #
# Plan cache keyed by (model, precision)
# --------------------------------------------------------------------------- #
class TestPlanCachePerPrecision:
    def test_modes_coexist_and_invalidate_together(self, trained_ddnn):
        invalidate_plan(trained_ddnn)
        baseline = cached_plan_count()
        exact = compiled_plan_for(trained_ddnn)
        fp32 = compiled_plan_for(trained_ddnn, "float32")
        assert exact is not fp32
        assert cached_plan_count() == baseline + 2
        # Hits: same objects come back, nothing new is compiled.
        assert compiled_plan_for(trained_ddnn) is exact
        assert compiled_plan_for(trained_ddnn, "float32") is fp32
        assert cached_plan_count() == baseline + 2
        # One invalidation call evicts every mode's plan for the model.
        invalidate_plan(trained_ddnn)
        assert cached_plan_count() == baseline
        assert compiled_plan_for(trained_ddnn) is not exact

    def test_cache_rejects_unknown_mode(self, trained_ddnn):
        with pytest.raises(ValueError, match="unknown precision"):
            compiled_plan_for(trained_ddnn, "int8")


# --------------------------------------------------------------------------- #
# Consumer validation: every knob rejects bad modes loudly
# --------------------------------------------------------------------------- #
class TestConsumerValidation:
    def test_cascade_and_engine_reject_unknown_mode(self, trained_ddnn):
        with pytest.raises(ValueError, match="unknown precision"):
            ExitCascade.for_model(trained_ddnn, 0.8, precision="tf32")
        with pytest.raises(ValueError, match="unknown precision"):
            StagedInferenceEngine(trained_ddnn, 0.8, compile=True, precision="tf32")

    def test_server_requires_compile_for_reduced_precision(self, trained_ddnn):
        from repro.serving import DDNNServer

        with pytest.raises(ValueError):
            DDNNServer(trained_ddnn, 0.8, compile=False, precision="float32")
        server = DDNNServer(trained_ddnn, 0.8, compile=True, precision="float32")
        assert server.precision == "float32"

    def test_fabric_per_tier_modes_validated(self, trained_ddnn):
        from repro.hierarchy.plan import PartitionPlan
        from repro.serving.fabric import DistributedServingFabric

        deployment = PartitionPlan(trained_ddnn).materialize()
        with pytest.raises(ValueError):
            DistributedServingFabric(
                deployment, 0.8, compile=True, precision="float128"
            )
        with pytest.raises(ValueError):
            DistributedServingFabric(
                deployment, 0.8, compile=False, precision="float32"
            )

    def test_fabric_from_plan_mixed_modes_serves(self, trained_ddnn, tiny_test):
        from repro.hierarchy.plan import PartitionPlan
        from repro.serving.fabric import DistributedServingFabric

        plan = PartitionPlan(trained_ddnn)
        plan.precision = ("bitpacked",) + ("float64",) * (plan.num_tiers - 1)
        fabric = DistributedServingFabric.from_plan(plan, 0.8, compile=True)
        assert list(fabric.precisions) == list(plan.precisions())
        # from_plan derives modes from the plan; an explicit kwarg conflicts.
        with pytest.raises(ValueError, match="precision"):
            DistributedServingFabric.from_plan(
                plan, 0.8, compile=True, precision="float64"
            )
        responses = fabric.serve_dataset(tiny_test)
        baseline = StagedInferenceEngine(trained_ddnn, 0.8).run(tiny_test)
        np.testing.assert_array_equal(
            np.array([r.prediction for r in responses]), baseline.predictions
        )

    def test_hierarchy_runtime_requires_compile(self, trained_ddnn):
        from repro.hierarchy import partition_ddnn
        from repro.hierarchy.runtime import HierarchyRuntime

        with pytest.raises(ValueError):
            HierarchyRuntime(
                partition_ddnn(trained_ddnn), 0.8, compile=False, precision="float32"
            )

    def test_partition_plan_precisions_broadcast_and_validate(self, trained_ddnn):
        from repro.hierarchy.plan import PartitionPlan

        plan = PartitionPlan(trained_ddnn)
        assert plan.precisions() == ("float64",) * plan.num_tiers
        mixed = PartitionPlan(
            trained_ddnn,
            precision=("bitpacked",) + ("float64",) * (plan.num_tiers - 1),
        )
        assert mixed.precisions()[0] == "bitpacked"
        with pytest.raises(ValueError):
            PartitionPlan(trained_ddnn, precision="int4")
        with pytest.raises(ValueError):
            PartitionPlan(
                trained_ddnn, precision=("float64",) * (plan.num_tiers + 1)
            )
