"""Tests for the runtime fault plane: chaos schedules, offload deadlines
with retry/backoff, circuit breaking, failover to local exits, and the
accounting that keeps degraded service honest."""

from __future__ import annotations

import math

import pytest

from repro.hierarchy import (
    ChaosSchedule,
    FaultPlan,
    HierarchyRuntime,
    LinkFlap,
    LinkLoss,
    LinkOutage,
    PartitionPlan,
    WorkerCrash,
    partition_ddnn,
)
from repro.serving import (
    BatchingPolicy,
    BreakerState,
    CircuitBreaker,
    DistributedServingFabric,
    EventLoop,
    LoadBalancer,
    PoissonProcess,
    RetryPolicy,
    ServiceModel,
    admission_policy,
    make_worker_pool,
)

THRESHOLD = 0.5  # low threshold => most requests offload, exercising the uplink
SERVICE = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
BATCHING = BatchingPolicy(max_batch_size=4, max_wait_s=0.004)
POLICY = RetryPolicy(
    deadline_s=0.1,
    max_retries=2,
    backoff_base_s=0.02,
    backoff_multiplier=2.0,
    backoff_max_s=0.08,
    jitter_s=0.005,
    seed=0,
)


def _fabric(model, **kwargs):
    plan = PartitionPlan(model)
    kwargs.setdefault("batching", BATCHING)
    kwargs.setdefault("service_models", [SERVICE] * plan.num_tiers)
    return DistributedServingFabric.from_plan(plan, THRESHOLD, **kwargs)


def _serve(fabric, tiny_test, num_requests=32, rate=30.0, seed=0):
    return fabric.open_loop(
        PoissonProcess(rate_rps=rate, seed=seed),
        tiny_test.images,
        targets=[int(label) for label in tiny_test.labels],
        num_requests=num_requests,
    )


def _accounting(responses):
    return sorted(
        (
            r.request_id,
            r.prediction,
            r.exit_index,
            r.exit_name,
            r.degraded,
            r.retries,
            r.shed,
            r.completion_time,
        )
        for r in responses
    )


# --------------------------------------------------------------------------- #
class TestFaultPlanReset:
    def test_reset_restores_the_draw_sequence(self):
        plan = FaultPlan(intermittent={0: 0.5, 1: 0.3}, seed=7)
        first = [plan.sample_delivery(i % 2) for i in range(40)]
        replay = [plan.reset().sample_delivery(0)] + [
            plan.sample_delivery(i % 2) for i in range(1, 40)
        ]
        fresh = FaultPlan(intermittent={0: 0.5, 1: 0.3}, seed=7)
        assert first == replay
        assert first == [fresh.sample_delivery(i % 2) for i in range(40)]

    def test_reset_returns_self_and_preserves_static_faults(self):
        plan = FaultPlan(failed_devices={1}, seed=3)
        assert plan.reset() is plan
        assert plan.device_is_down(1)

    def test_runtime_reuse_replays_the_same_intermittent_realisation(
        self, trained_ddnn, tiny_test
    ):
        """Regression: sample_delivery consumes the plan's RNG, so a second
        run over a *reused* runtime/plan used to see different draws."""
        plan = FaultPlan(intermittent={0: 0.6, 2: 0.6}, seed=11)
        runtime = HierarchyRuntime(partition_ddnn(trained_ddnn), 0.8, fault_plan=plan)
        first = runtime.run(tiny_test)
        second = runtime.run(tiny_test)
        assert first.predictions.tolist() == second.predictions.tolist()
        assert first.exit_names_per_sample == second.exit_names_per_sample
        assert first.bytes_per_sample.tolist() == second.bytes_per_sample.tolist()


# --------------------------------------------------------------------------- #
class TestChaosSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            LinkOutage(start=1.0, end=1.0)
        with pytest.raises(ValueError):
            LinkFlap(period_s=0.1, down_s=0.1)  # down must be < period
        with pytest.raises(ValueError):
            LinkFlap(period_s=0.0, down_s=0.0)
        with pytest.raises(ValueError):
            LinkLoss(probability=1.5)
        with pytest.raises(ValueError):
            WorkerCrash(tier="cloud", start=0.0, end=math.inf)  # must restart
        with pytest.raises(ValueError):
            WorkerCrash(tier="cloud", start=0.0, end=1.0, workers=0)

    def test_outage_window_is_half_open_and_wildcarded(self):
        schedule = ChaosSchedule(outages=[LinkOutage(destination="cloud", start=1.0, end=2.0)])
        assert schedule.link_up("devices", "cloud", 0.999)
        assert not schedule.link_up("devices", "cloud", 1.0)
        assert not schedule.link_up("edge-0", "cloud", 1.999)
        assert schedule.link_up("devices", "cloud", 2.0)  # end excluded
        assert schedule.link_up("devices", "edge-0", 1.5)  # other destination

    def test_flap_phase_alignment(self):
        flap = LinkFlap(period_s=0.4, down_s=0.1, start=1.0, end=2.0)
        schedule = ChaosSchedule(flaps=[flap])
        assert schedule.link_up("a", "b", 0.5)  # before the flap starts
        assert not schedule.link_up("a", "b", 1.05)  # first down phase
        assert schedule.link_up("a", "b", 1.2)  # up phase
        assert not schedule.link_up("a", "b", 1.45)  # second down phase
        assert schedule.link_up("a", "b", 2.05)  # after end

    def test_loss_probabilities_combine_independently(self):
        schedule = ChaosSchedule(
            losses=[LinkLoss(probability=0.5), LinkLoss(probability=0.5)]
        )
        assert schedule.loss_probability("a", "b", 0.0) == pytest.approx(0.75)
        assert schedule.loss_probability("a", "b", math.inf) == 0.0

    def test_workers_down_caps_at_pool_size(self):
        schedule = ChaosSchedule(
            crashes=[
                WorkerCrash(tier="cloud", start=0.0, end=1.0, workers=2),
                WorkerCrash(tier="cloud", start=0.5, end=1.5, workers=2),
            ]
        )
        assert schedule.workers_down("cloud", 0.25, 3) == 2
        assert schedule.workers_down("cloud", 0.75, 3) == 3  # capped
        assert schedule.workers_down("cloud", 1.25, 3) == 2
        assert schedule.workers_down("edge-0", 0.75, 3) == 0
        assert schedule.worker_event_times("cloud") == [0.0, 0.5, 1.0, 1.5]

    def test_loss_draws_reset_and_stay_draw_count_stable(self):
        window = dict(start=1.0, end=2.0)
        first = ChaosSchedule(losses=[LinkLoss(probability=0.5, **window)], seed=9)
        # Draws outside the window consume no RNG state...
        for _ in range(10):
            assert not first.sample_loss("a", "b", 0.5)
        inside = [first.sample_loss("a", "b", 1.5) for _ in range(20)]
        # ...so a schedule that only ever draws inside the window agrees.
        fresh = ChaosSchedule(losses=[LinkLoss(probability=0.5, **window)], seed=9)
        assert inside == [fresh.sample_loss("a", "b", 1.5) for _ in range(20)]
        # And reset() rewinds to the seeded state.
        first.reset()
        assert inside == [first.sample_loss("a", "b", 1.5) for _ in range(20)]

    def test_is_empty_and_has_link_chaos(self):
        assert ChaosSchedule().is_empty()
        crash_only = ChaosSchedule(crashes=[WorkerCrash(tier="cloud", start=0.0, end=1.0)])
        assert not crash_only.is_empty()
        assert not crash_only.has_link_chaos
        assert ChaosSchedule(outages=[LinkOutage()]).has_link_chaos


# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)

    def test_closed_to_open_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        for t in (0.0, 0.1):
            breaker.record_failure(t)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.2)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(0.3)

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.5)
        assert breaker.state is BreakerState.OPEN

    def test_half_open_admits_a_single_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.0)  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(1.1)  # only one outstanding probe

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_success(1.2)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(1.3)

    def test_probe_failure_reopens_and_restarts_the_timer(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.2)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(1.5)  # timer restarted at 1.2
        assert breaker.allow(2.2)

    def test_straggling_failure_while_open_is_ignored(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        opened_at = breaker.opened_at
        breaker.record_failure(0.5)  # late timeout from before the trip
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == opened_at

    def test_spawn_copies_thresholds_only(self):
        template = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.5)
        template.record_failure(0.0)
        template.record_failure(0.1)
        child = template.spawn()
        assert template.state is BreakerState.OPEN
        assert child.state is BreakerState.CLOSED
        assert child.failure_threshold == 2
        assert child.reset_timeout_s == 0.5


# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=0.2, backoff_max_s=0.1)

    def test_backoff_ladder_is_capped(self):
        policy = RetryPolicy(
            deadline_s=0.1, backoff_base_s=0.05, backoff_multiplier=2.0, backoff_max_s=0.15
        )
        assert policy.backoff_s(1) == pytest.approx(0.05)
        assert policy.backoff_s(2) == pytest.approx(0.10)
        assert policy.backoff_s(3) == pytest.approx(0.15)  # capped
        assert policy.backoff_s(4) == pytest.approx(0.15)
        with pytest.raises(ValueError):
            policy.backoff_s(0)

    def test_worst_case_delay_bounds_the_ladder(self):
        policy = RetryPolicy(
            deadline_s=0.1,
            max_retries=2,
            backoff_base_s=0.02,
            backoff_multiplier=2.0,
            backoff_max_s=1.0,
            jitter_s=0.01,
        )
        # 3 deadlines + backoffs (0.02 + 0.04) + 2 max jitters.
        assert policy.worst_case_delay_s() == pytest.approx(0.3 + 0.06 + 0.02)


# --------------------------------------------------------------------------- #
class TestEventHandleCancellation:
    def test_cancelled_event_never_fires(self):
        loop = EventLoop()
        fired = []
        keep = loop.schedule(1.0, lambda now: fired.append(("keep", now)))
        drop = loop.schedule(0.5, lambda now: fired.append(("drop", now)))
        drop.cancel()
        loop.run()
        assert fired == [("keep", 1.0)]
        assert keep.cancelled is False
        assert drop.cancelled is True

    def test_cancel_after_firing_is_a_noop(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(0.1, lambda now: fired.append(now))
        loop.run()
        handle.cancel()
        assert fired == [0.1]

    def test_cancelled_head_is_skipped_without_consuming_the_budget(self):
        loop = EventLoop()
        fired = []
        head = loop.schedule(0.5, lambda now: fired.append("head"))
        loop.schedule(1.5, lambda now: fired.append("tail"))
        head.cancel()
        # A cancelled heap head must not count against max_events: one slot
        # of budget still reaches the live event behind it.
        assert loop.run(max_events=1) == 1
        assert fired == ["tail"]
        assert loop.clock.now == 1.5


# --------------------------------------------------------------------------- #
class TestWorkerPoolOffline:
    def test_apply_offline_prefers_idle_workers_and_restores(self):
        pool = make_worker_pool("simulated", EventLoop(), num_workers=3)
        busy = pool.acquire(0.0)
        busy.busy_until = 5.0
        assert pool.apply_offline(2, 0.0) == 2
        assert pool.online == 1
        # The busy worker survives (idle workers crash first).
        assert not busy.offline
        # acquire skips offline workers; the only online one is mid-batch.
        assert pool.acquire(0.0) is None
        assert pool.apply_offline(0, 6.0) == 0
        assert pool.online == 3
        assert pool.acquire(6.0) is not None

    def test_blackout_takes_every_worker(self):
        pool = make_worker_pool("simulated", EventLoop(), num_workers=2)
        assert pool.apply_offline(2, 0.0) == 2
        assert pool.online == 0
        assert pool.acquire(0.0) is None


# --------------------------------------------------------------------------- #
class TestResilientOffload:
    def test_no_chaos_resilient_path_matches_legacy_exactly(
        self, trained_ddnn, tiny_test
    ):
        legacy = _serve(_fabric(trained_ddnn), tiny_test)
        fabric = _fabric(trained_ddnn, offload=POLICY)
        resilient = _serve(fabric, tiny_test)
        key = lambda rs: sorted(
            (r.request_id, r.prediction, r.exit_index, r.exit_name, r.completion_time)
            for r in rs
        )
        assert key(resilient.responses) == key(legacy.responses)
        assert resilient.degraded_fraction == 0.0
        assert resilient.retry_total == 0
        stats = fabric.resilience_stats
        assert stats.attempts > 0  # the resilient path was actually exercised
        assert stats.timeouts == stats.retries == stats.failovers == 0

    def test_partition_fails_over_to_local_exits(self, trained_ddnn, tiny_test):
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0),
            chaos=ChaosSchedule(outages=[LinkOutage(destination="cloud")], seed=0),
        )
        report = _serve(fabric, tiny_test)
        assert report.served == 32
        assert len({r.request_id for r in report.responses}) == 32
        degraded = [r for r in report.responses if r.degraded]
        assert degraded, "a full partition must force failovers"
        # Degraded answers come from the origin tier's own exit, honestly
        # labelled, never counted as shed.
        first_exit = fabric.sections[0].exit_name
        assert all(r.exit_name == first_exit and not r.shed for r in degraded)
        assert len(degraded) == fabric.resilience_stats.failovers
        assert fabric.resilience_stats.timeouts > 0
        assert fabric.deployment.fabric.lost_messages > 0
        # The breaker learned the link is dark and fast-failed later groups.
        assert fabric.resilience_stats.breaker_fast_fails > 0
        assert fabric.breaker_for("devices", "cloud").state is BreakerState.OPEN

    def test_flaky_uplink_retries_bridge_short_gaps(self, trained_ddnn, tiny_test):
        chaos = ChaosSchedule(
            flaps=[LinkFlap(period_s=0.4, down_s=0.12, destination="cloud")],
            losses=[LinkLoss(probability=0.1, destination="cloud")],
            seed=0,
        )
        fabric = _fabric(trained_ddnn, offload=POLICY, chaos=chaos)
        report = _serve(fabric, tiny_test)
        assert report.served == 32
        assert report.retry_total > 0
        # Some offloads survived after retrying: the retry ladder is not
        # just a detour to failover.
        assert any(r.retries > 0 and not r.degraded for r in report.responses)
        # Lost/darkened sends still burned the deadline that detected them.
        assert fabric.resilience_stats.timeouts >= fabric.resilience_stats.retries

    def test_chaos_runs_are_byte_identical_under_seed(self, trained_ddnn, tiny_test):
        def _run():
            chaos = ChaosSchedule(
                flaps=[LinkFlap(period_s=0.4, down_s=0.12, destination="cloud")],
                losses=[LinkLoss(probability=0.1, destination="cloud")],
                outages=[LinkOutage(destination="cloud", start=0.5, end=0.8)],
                seed=4,
            )
            fabric = _fabric(trained_ddnn, offload=POLICY, chaos=chaos)
            report = _serve(fabric, tiny_test)
            return _accounting(report.responses), fabric.resilience_stats.as_dict()

        first_acc, first_stats = _run()
        second_acc, second_stats = _run()
        assert first_acc == second_acc
        assert first_stats == second_stats

    def test_breaker_recovers_after_the_partition_heals(self, trained_ddnn, tiny_test):
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout_s=0.05),
            chaos=ChaosSchedule(
                outages=[LinkOutage(destination="cloud", start=0.0, end=0.4)], seed=0
            ),
        )
        report = _serve(fabric, tiny_test, num_requests=32, rate=30.0)
        assert report.served == 32
        assert fabric.resilience_stats.breaker_fast_fails > 0
        # After the outage window a half-open probe succeeded, closed the
        # breaker, and cloud service resumed.
        assert fabric.breaker_for("devices", "cloud").state is BreakerState.CLOSED
        healed = [
            r
            for r in report.responses
            if r.exit_name == fabric.sections[-1].exit_name and not r.degraded
        ]
        assert healed, "no request reached the cloud exit after the heal"

    def test_worker_crash_delays_but_never_degrades(self, trained_ddnn, tiny_test):
        crash = WorkerCrash(tier="cloud", start=0.2, end=0.6)
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            chaos=ChaosSchedule(crashes=[crash], seed=0),
        )
        probes = {}
        fabric.events.schedule(0.3, lambda now: probes.update(mid=fabric.healthy))
        report = _serve(fabric, tiny_test)
        assert report.served == 32
        assert report.degraded_fraction == 0.0
        assert probes["mid"] is False  # the blackout actually took the tier down
        assert fabric.healthy  # restart restored the pool

    def test_link_chaos_without_retry_policy_is_rejected(self, trained_ddnn):
        fabric = _fabric(trained_ddnn)
        with pytest.raises(ValueError, match="RetryPolicy"):
            fabric.attach_chaos(ChaosSchedule(outages=[LinkOutage()]))
        # Pure worker chaos is fine without one: links never darken.
        fabric.attach_chaos(
            ChaosSchedule(crashes=[WorkerCrash(tier="cloud", start=0.0, end=0.1)])
        )

    def test_breaker_without_offload_policy_is_rejected(self, trained_ddnn):
        with pytest.raises(ValueError, match="offload"):
            _fabric(trained_ddnn, breaker=CircuitBreaker())


# --------------------------------------------------------------------------- #
class TestChaosAccounting:
    def test_invariants_hold_under_midrun_flaps_with_bounded_queues(
        self, trained_ddnn, tiny_test
    ):
        """offered == accepted + rejected + shed; responses == accepted -
        dropped + shed; degraded == failovers — with link flaps mid-run and
        a bounded ingress shedding to the local exit."""
        chaos = ChaosSchedule(
            flaps=[LinkFlap(period_s=0.3, down_s=0.12, destination="cloud")],
            losses=[LinkLoss(probability=0.15, destination="cloud")],
            seed=2,
        )
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            capacity=6,
            admission=admission_policy("shed-local"),
            chaos=chaos,
        )
        views = list(tiny_test.images)
        gap = 1.0 / (4.0 * SERVICE.capacity_rps(4))  # 4x overload
        for index, sample in enumerate(views):
            fabric.submit(sample, target=int(tiny_test.labels[index]), at=index * gap)
        fabric.run_until_idle(drain=True)

        stats = fabric.admission_stats
        responses = fabric.responses
        shed = [r for r in responses if r.shed]
        degraded = [r for r in responses if r.degraded]
        assert stats.shed > 0, "overload never triggered shedding"
        assert degraded or fabric.resilience_stats.retries > 0, (
            "the flap windows never touched an offload"
        )
        assert fabric.offered == stats.accepted + stats.rejected + stats.shed
        assert len(responses) - len(shed) == stats.accepted - stats.dropped
        assert len(shed) == stats.shed
        assert len(degraded) == fabric.resilience_stats.failovers
        assert not any(r.shed for r in degraded)  # disjoint classifications
        ids = [r.request_id for r in responses]
        assert len(ids) == len(set(ids)), "duplicate responses"
        # Every admitted-and-kept request got exactly one answer.
        assert len(responses) == fabric.offered - stats.rejected - stats.dropped


# --------------------------------------------------------------------------- #
class TestHealthAwareBalancer:
    def test_mark_down_routes_around_and_all_down_raises(self, trained_ddnn):
        plan = PartitionPlan(trained_ddnn, replicas=2)
        balancer = LoadBalancer.from_plan(plan, THRESHOLD, strategy="round-robin")
        balancer.mark_down(0)
        assert balancer.healthy_indices() == [1]
        assert balancer.pick() == 1
        balancer.mark_down(1)
        with pytest.raises(RuntimeError, match="unhealthy"):
            balancer.pick()
        balancer.mark_up(0)
        assert balancer.pick() == 0
        with pytest.raises(IndexError):
            balancer.mark_down(5)

    def test_crashed_replica_stack_is_excluded_until_restart(
        self, trained_ddnn, tiny_test
    ):
        plan = PartitionPlan(trained_ddnn, replicas=2)
        balancer = LoadBalancer.from_plan(plan, THRESHOLD, strategy="round-robin")
        # Replica 0's cloud tier blacks out from t=0; its own clock is still
        # at 0, so the balancer sees it unhealthy immediately.
        balancer.replicas[0].attach_chaos(
            ChaosSchedule(crashes=[WorkerCrash(tier="cloud", start=0.0, end=1.0)])
        )
        assert balancer.healthy_indices() == [1]
        for _ in range(3):  # rotation collapses onto the healthy stack
            assert balancer.pick() == 1
        index, _ = balancer.submit(tiny_test.images[0])
        assert index == 1
        # Advance replica 0 past the restart boundary: health returns.
        balancer.replicas[0].run_until_idle(drain=True)
        assert balancer.replicas[0].clock.now >= 1.0
        assert balancer.healthy_indices() == [0, 1]
