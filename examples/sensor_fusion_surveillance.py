"""Multi-camera surveillance: sensor fusion across geographically distributed devices.

The scenario from the paper's evaluation: six cameras watch the same area
from different angles; some have poor viewpoints, lenses or exposure.  The
example compares three systems on the same data:

* each camera classifying alone (the *individual* baselines),
* the DDNN's local exit (fusing all cameras at the gateway), and
* the full DDNN with cloud offloading of hard samples.

It reproduces the qualitative result of the paper's Figure 8: fusion lifts
accuracy far above any individual camera, and offloading the difficult
samples to the cloud adds a further margin at a tiny communication cost.

Run with::

    python examples/sensor_fusion_surveillance.py [--epochs 25]
"""

from __future__ import annotations

import argparse

from repro.baselines import individual_accuracies
from repro.core import (
    DDNNConfig,
    DDNNTrainer,
    StagedInferenceEngine,
    TrainingConfig,
    build_ddnn,
    evaluate_exit_accuracies,
)
from repro.datasets import load_mvmc_splits


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=240)
    parser.add_argument("--test-samples", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--threshold", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )

    print("Training an individual model per camera (no fusion) ...")
    individual = individual_accuracies(
        train_set,
        test_set,
        filters=4,
        config=TrainingConfig(epochs=args.epochs, batch_size=32),
    )
    for device, accuracy in sorted(individual.items()):
        profile = train_set.profiles[device]
        print(f"  {profile.name:>9}: {100 * accuracy:5.1f}%  "
              f"(noise={profile.noise_level:.2f}, brightness={profile.brightness:.2f})")
    best_individual = max(individual.values())
    print(f"  best individual camera: {100 * best_individual:.1f}%")

    print("\nJointly training the DDNN over all six cameras ...")
    model = build_ddnn(
        DDNNConfig(num_devices=train_set.num_devices, device_filters=4, cloud_filters=16,
                   cloud_hidden_units=64, seed=args.seed)
    )
    DDNNTrainer(model, TrainingConfig(epochs=args.epochs, batch_size=32)).fit(train_set)

    exits = evaluate_exit_accuracies(model, test_set)
    engine = StagedInferenceEngine(model, args.threshold)
    staged = engine.run(test_set)

    print("\nResults on the shared test set:")
    print(f"  best individual camera : {100 * best_individual:.1f}%")
    print(f"  DDNN local exit (fused): {100 * exits['local']:.1f}%")
    print(f"  DDNN cloud exit        : {100 * exits['cloud']:.1f}%")
    print(f"  DDNN overall (T={args.threshold})   : "
          f"{100 * staged.overall_accuracy(test_set.labels):.1f}% "
          f"with {100 * staged.local_exit_fraction:.1f}% of samples exiting locally")
    print(f"  communication          : {engine.communication_bytes(staged):.1f} B/sample/device "
          f"vs 3072 B raw offload")
    gain = 100 * (staged.overall_accuracy(test_set.labels) - best_individual)
    print(f"\nSensor fusion gain over the best single camera: {gain:+.1f} percentage points")


if __name__ == "__main__":
    main()
