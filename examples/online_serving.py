"""Online DDNN serving: clients stream samples, the cascade answers.

This example mirrors the paper's deployment story end to end:

1. train a small multi-exit DDNN on the synthetic MVMC dataset;
2. stand up a :class:`~repro.serving.server.DDNNServer` with dynamic
   micro-batching;
3. stream the test set through it as two independent camera-hub clients;
4. show the rolling telemetry — throughput, latency percentiles and how
   much traffic each exit absorbed — plus the per-exit response routing.

Run with::

    PYTHONPATH=src python examples/online_serving.py
"""

from __future__ import annotations

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.serving import BatchingPolicy, DDNNServer


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)
    model.eval()

    server = DDNNServer(
        model,
        thresholds=0.8,
        policy=BatchingPolicy(max_batch_size=16, max_wait_s=0.001),
    )

    print("Streaming the test set from two clients...")
    clients = ("hub-east", "hub-west")
    for index in range(len(test_set)):
        server.submit(
            test_set.images[index],
            client_id=clients[index % len(clients)],
            target=int(test_set.labels[index]),
        )
        # Opportunistically serve whenever the batcher says a batch is due,
        # exactly as the synchronous serving loop would under live traffic.
        server.step()
    server.run_until_drained()

    snapshot = server.snapshot()
    print(f"\nServed {snapshot.total_requests} requests in {snapshot.total_batches} micro-batches")
    print(f"  throughput       : {snapshot.throughput_rps:8.1f} requests/s")
    print(f"  mean batch size  : {snapshot.mean_batch_size:8.1f}")
    print(f"  latency mean/p95 : {1e3 * snapshot.mean_latency_s:6.2f} / {1e3 * snapshot.p95_latency_s:.2f} ms")
    print(f"  accuracy         : {100.0 * (snapshot.accuracy or 0.0):8.1f} %")
    print("  exit traffic split:")
    for name, fraction in snapshot.exit_fractions.items():
        print(f"    {name:<6} {100.0 * fraction:5.1f} %")

    print("\nPer-exit response routing:")
    for name in server.exit_names:
        responses = server.responses_for_exit(name)
        print(f"  {name:<6} delivered {len(responses):3d} responses")

    print("\nPer-client sessions:")
    for client_id, session in sorted(server.queue.sessions.items()):
        print(f"  {client_id:<9} submitted={session.submitted} completed={session.completed}")


if __name__ == "__main__":
    main()
