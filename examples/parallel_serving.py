"""Real thread-pool workers behind the serving fabric: same script, two backends.

Every simulation-based example runs its workers as bookkeeping slots on a
discrete-event loop — deterministic, reproducible, but never actually
concurrent.  This example flips the worker backend to ``"thread"`` and runs
the *same* serving code on a real :class:`~concurrent.futures.ThreadPoolExecutor`
against wall-clock time:

1. train a small multi-exit DDNN on the synthetic MVMC dataset;
2. serve the test set through the tier fabric on the deterministic
   *simulated* backend (compiled forwards) — the reference routing;
3. serve it again on the *thread* backend at several worker counts and
   cross-check that every request gets the same prediction and exit index
   (entropies agree to ~1e-12: real timing reshuffles upper-tier batch
   composition, and BLAS kernels are shape-dependent in the last ulp);
4. time a single-node :class:`~repro.serving.server.DDNNServer` with 1, 2
   and 4 real workers to show the wall-clock scaling knob (speedups depend
   on the CPUs actually available — on a 1-core box threads only add
   overhead, which the printout calls out honestly).

Run with::

    PYTHONPATH=src python examples/parallel_serving.py
"""

from __future__ import annotations

import time

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.experiments.parallel_serving import available_cpu_count
from repro.hierarchy import partition_ddnn
from repro.serving import BatchingPolicy, DDNNServer, DistributedServingFabric


def routing(responses):
    return [
        (r.request_id, r.prediction, r.exit_index)
        for r in sorted(responses, key=lambda r: r.request_id)
    ]


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)
    model.eval()

    threshold = 0.8
    batching = BatchingPolicy(max_batch_size=8)

    # ------------------------------------------------------------------ #
    # Reference: deterministic simulated backend, compiled forwards.
    fabric = DistributedServingFabric(
        partition_ddnn(model),
        threshold,
        workers_per_tier=2,
        batching=batching,
        compile=True,
    )
    with fabric:
        reference = routing(fabric.serve_dataset(test_set))
    print(f"\nSimulated backend routed {len(reference)} requests (reference).")

    # Same fabric, real threads — routing must not change.
    for workers in (1, 2, 4):
        fabric = DistributedServingFabric(
            partition_ddnn(model),
            threshold,
            workers_per_tier=workers,
            batching=batching,
            compile=True,
            backend="thread",
        )
        with fabric:
            start = time.perf_counter()
            got = routing(fabric.serve_dataset(test_set))
            wall_ms = 1e3 * (time.perf_counter() - start)
        verdict = "identical" if got == reference else "MISMATCH"
        print(
            f"  thread backend, {workers} worker(s)/tier: {wall_ms:7.1f} ms, "
            f"routing {verdict}"
        )
        assert got == reference, "thread backend diverged from simulated routing"

    # ------------------------------------------------------------------ #
    # Wall-clock scaling on the single-node server.
    cores = available_cpu_count()
    print(f"\nDDNNServer wall-clock scaling ({cores} CPU core(s) visible):")
    base_rps = None
    for workers in (1, 2, 4):
        server = DDNNServer(
            model,
            threshold,
            policy=BatchingPolicy.sequential(),
            compile=True,
            workers=workers,
            backend="thread",
        )
        with server:
            start = time.perf_counter()
            for views in test_set.images:
                server.submit(views)
            server.run_until_drained()
            wall = time.perf_counter() - start
        rps = len(test_set) / wall
        base_rps = base_rps or rps
        print(
            f"  {workers} worker(s): {1e3 * wall:7.1f} ms  "
            f"{rps:8.1f} req/s  ({rps / base_rps:.2f}x)"
        )
    if cores < 2:
        print(
            "  (single visible core: threads can only add overhead here; "
            "run on a multi-core machine to see the scaling)"
        )


if __name__ == "__main__":
    main()
