"""The elastic tier plane: autoscaling workers and moving a live boundary.

A deployment is described by a mutable :class:`~repro.hierarchy.PartitionPlan`
— which tiers exit, how fast each node is, how the links are tuned, how many
workers serve each tier and (optionally) an
:class:`~repro.hierarchy.AutoscalePolicy` letting the fabric move worker
counts between watermarks on its own.  This example shows both elastic
motions on a small trained DDNN:

1. a sinusoidal day/night arrival ramp (:class:`~repro.serving.DiurnalProcess`)
   served three ways — one worker all day, the peak worker budget all day,
   and an autoscaled fabric that starts at one worker and follows the load.
   The elastic run should match the fully-provisioned p95 while holding the
   extra workers only around the crest (the printed trajectory shows when);
2. a *live re-partition*: ``apply_plan`` moves the exit boundary on a fabric
   mid-burst (device exit off → devices become pure feature extractors).
   In-flight batches drain, queued requests are re-queued against the new
   sections with exact accounting, and the post-handoff routing is checked
   against a fabric freshly built at the new boundary.

Run with::

    PYTHONPATH=src python examples/elastic_serving.py
"""

from __future__ import annotations

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.hierarchy import AutoscalePolicy, PartitionPlan
from repro.serving import (
    BatchingPolicy,
    DistributedServingFabric,
    DiurnalProcess,
    ServiceModel,
)


def routing(responses, after=float("-inf")):
    return sorted(
        (r.request_id, r.prediction, r.exit_index)
        for r in responses
        if r.completion_time > after
    )


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)

    threshold = 0.8
    peak_workers = 3
    num_requests = 150
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
    one_worker_rps = service.capacity_rps(4)
    batching = BatchingPolicy(max_batch_size=4, max_wait_s=0.004)
    policy = AutoscalePolicy(
        min_workers=1,
        max_workers=peak_workers,
        high_watermark=1,
        low_watermark=0,
        cooldown_s=0.5,
        step=peak_workers - 1,
    )

    # ------------------------------------------------------------------ #
    # 1. Diurnal ramp: trough below one worker, crest needing the budget.
    base_rate = 0.6 * one_worker_rps
    peak_rate = 0.8 * peak_workers * one_worker_rps
    period = 2.0 * num_requests / (base_rate + peak_rate)
    print(
        f"\nDiurnal ramp: {base_rate:.0f} -> {peak_rate:.0f} req/s over a "
        f"{period:.2f} s cycle, {num_requests} requests, "
        f"one worker sustains ~{one_worker_rps:.0f} req/s"
    )

    plans = {
        "static-min": PartitionPlan(model, workers_per_tier=1),
        "static-peak": PartitionPlan(model, workers_per_tier=peak_workers),
        "elastic": PartitionPlan(model, workers_per_tier=1, autoscale=policy),
    }
    for name, plan in plans.items():
        fabric = DistributedServingFabric.from_plan(
            plan,
            threshold,
            batching=batching,
            service_models=[service] * plan.num_tiers,
        )
        process = DiurnalProcess(base_rate, peak_rate, period_s=period, seed=0)
        report = fabric.open_loop(
            process, test_set.images, num_requests=num_requests
        )
        print(
            f"  {name:<12} p50 {1e3 * report.p50_latency_s:7.2f} ms   "
            f"p95 {1e3 * report.p95_latency_s:7.2f} ms"
        )
        if fabric.autoscaler is not None:
            print("  worker trajectory (time, tier, workers):")
            for when, tier, workers in fabric.autoscaler.trajectory:
                print(f"    t={when:6.3f}s  {tier:<8} -> {workers}")

    # ------------------------------------------------------------------ #
    # 2. Live re-partition mid-burst: disable the device exit on a running
    #    fabric and hand the backlog to the new sections without loss.
    plan_a = PartitionPlan(model)
    plan_b = plan_a.with_changes(local_exit=False)
    burst = min(num_requests, len(test_set.images))
    gap = 1.0 / (1.5 * one_worker_rps)  # mild overload: a real backlog forms

    live = DistributedServingFabric.from_plan(
        plan_a, threshold, batching=batching,
        service_models=[service] * plan_a.num_tiers,
    )
    for index in range(burst):
        live.submit(test_set.images[index], at=index * gap)
    live.events.schedule(
        burst * gap / 2.0, lambda now: live.apply_plan(plan_b, now=now)
    )
    live.run_until_idle(drain=True)
    handoff = live.last_repartition

    fresh = DistributedServingFabric.from_plan(
        plan_b, threshold, batching=batching,
        service_models=[service] * plan_b.num_tiers,
    )
    for index in range(burst):
        fresh.submit(test_set.images[index], at=index * gap)
    fresh.run_until_idle(drain=True)

    after = routing(live.responses, after=handoff.time)
    after_ids = {row[0] for row in after}
    reference = [row for row in routing(fresh.responses) if row[0] in after_ids]
    verdict = "identical" if after == reference else "MISMATCH"
    print(
        f"\nLive re-partition at t={handoff.time:.3f}s: "
        f"{handoff.total_requeued} queued request(s) re-queued "
        f"({', '.join(f'{k}: {len(v)}' for k, v in handoff.requeued_ids.items())})"
    )
    print(
        f"  {len(live.responses)}/{burst} answered, "
        f"{len(after)} under the new plan — routing vs fresh fabric: {verdict}"
    )
    assert after == reference, "post-handoff routing diverged"


if __name__ == "__main__":
    main()
