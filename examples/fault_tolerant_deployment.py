"""Fault-tolerant deployment: run a trained DDNN on the hierarchy simulator.

This example exercises the full distributed stack rather than the monolithic
model: the trained DDNN is partitioned onto simulated end-device, gateway and
cloud nodes connected by bandwidth-constrained links, and inference is driven
by the hierarchy runtime with per-sample byte and latency accounting.  It then
injects device failures — both a dead camera and a flaky wireless link — and
reports how gracefully accuracy degrades (the paper's Figure 10 scenario).

Run with::

    python examples/fault_tolerant_deployment.py [--epochs 25]
"""

from __future__ import annotations

import argparse

from repro.core import DDNNConfig, DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import load_mvmc_splits
from repro.hierarchy import FaultPlan, HierarchyRuntime, partition_ddnn


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=240)
    parser.add_argument("--test-samples", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--threshold", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def describe(label: str, runtime: HierarchyRuntime, dataset) -> None:
    result = runtime.run(dataset)
    summary = result.telemetry.summary()
    print(f"\n{label}")
    print(f"  accuracy          : {100 * summary.accuracy:.1f}%")
    print(f"  exit fractions    : " + ", ".join(
        f"{name}={100 * fraction:.1f}%" for name, fraction in summary.exit_fractions.items()
    ))
    print(f"  mean latency      : {1e3 * summary.mean_latency_s:.2f} ms "
          f"(p95 {1e3 * summary.p95_latency_s:.2f} ms)")
    print(f"  bytes per sample  : {summary.mean_bytes_per_sample:.1f} B (all devices combined)")


def main() -> None:
    args = parse_args()
    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )

    print("Training the DDNN ...")
    model = build_ddnn(
        DDNNConfig(num_devices=train_set.num_devices, device_filters=4, cloud_filters=16,
                   cloud_hidden_units=64, seed=args.seed)
    )
    DDNNTrainer(model, TrainingConfig(epochs=args.epochs, batch_size=32)).fit(train_set)

    print("Partitioning the DDNN onto simulated devices, gateway and cloud ...")
    deployment = partition_ddnn(model)
    print(f"  nodes: {[d.name for d in deployment.devices]} + "
          f"{deployment.local_aggregator.name} + {deployment.cloud.name}")
    print(f"  links: {len(deployment.fabric.links())}")

    describe(
        "Healthy system",
        HierarchyRuntime(deployment, args.threshold),
        test_set,
    )

    # A dead camera: the best-placed device (index 5) stops transmitting and
    # the dataset the system observes has that camera blanked out.
    dead_device = test_set.num_devices - 1
    degraded_data = test_set.with_failed_devices([dead_device])
    describe(
        f"Device {dead_device + 1} failed (dead camera)",
        HierarchyRuntime(
            partition_ddnn(model), args.threshold, fault_plan=FaultPlan(failed_devices={dead_device})
        ),
        degraded_data,
    )

    # A flaky wireless link: device 3 drops half of its transmissions.
    describe(
        "Device 3 on a flaky link (50% sample loss)",
        HierarchyRuntime(
            partition_ddnn(model), args.threshold, fault_plan=FaultPlan(intermittent={2: 0.5}, seed=1)
        ),
        test_set,
    )

    # Half of the fleet lost.
    lost = list(range(test_set.num_devices // 2))
    describe(
        f"Devices {[d + 1 for d in lost]} all failed",
        HierarchyRuntime(
            partition_ddnn(model), args.threshold, fault_plan=FaultPlan(failed_devices=set(lost))
        ),
        test_set.with_failed_devices(lost),
    )


if __name__ == "__main__":
    main()
