"""End-to-end SLO serving: deadline propagation and hedged offloads.

The chaos example shows the fabric *surviving* faults; this one shows
what surviving costs the tail and what an explicit end-to-end budget
buys back.  A small trained DDNN serves the same Poisson request stream
under two chaos scenarios, three ways each, on an identical two-replica
topology (all traffic enters replica 0, where chaos strikes):

1. ``no-slo`` — offload deadlines, retries, breakers and failover only;
   a request can spend the whole worst-case recovery ladder in the tail;
2. ``deadline`` — every request carries an end-to-end budget: expired
   work is retired from tier queues before burning compute, retry
   ladders are clipped to the remaining budget, and batches form
   earliest-deadline-first;
3. ``deadline+hedge`` — additionally, an offload that has consumed a
   fraction of its budget without delivering is speculatively re-sent to
   the sibling replica stack; first arrival wins, the loser is
   cancelled, and the losing copy's bytes are charged honestly.

Every cell answers every request exactly once, and on the simulated
clock the whole realisation is deterministic under the seed.

Run with::

    PYTHONPATH=src python examples/slo_serving.py
"""

from __future__ import annotations

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.hierarchy import (
    ChaosSchedule,
    LinkFlap,
    LinkLoss,
    LinkOutage,
    PartitionPlan,
    WorkerCrash,
)
from repro.serving import (
    BatchingPolicy,
    CircuitBreaker,
    HedgePolicy,
    LoadBalancer,
    PoissonProcess,
    RetryPolicy,
    ServiceModel,
)


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)

    threshold = 0.8
    num_requests = 120
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
    rate = 0.5 * service.capacity_rps(4)
    horizon = num_requests / rate
    batching = BatchingPolicy(max_batch_size=4, max_wait_s=0.004)
    policy = RetryPolicy(
        deadline_s=0.1,
        max_retries=3,
        backoff_base_s=0.05,
        backoff_multiplier=2.0,
        backoff_max_s=0.4,
        jitter_s=0.01,
        seed=0,
    )
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=0.25)
    # Budget: generous against one healthy journey, tight against the
    # retry ladder's worst case — it only binds when chaos eats the slack.
    slo_s = 0.8
    # Trigger between one healthy delivery and the first attempt timeout:
    # a clean run never hedges, a dark link is escaped before the ladder.
    hedge = HedgePolicy(trigger_fraction=0.1, max_hedges=1)

    scenarios = {
        "flaky-uplink": ChaosSchedule(
            flaps=[
                LinkFlap(
                    period_s=horizon / 4.0,
                    down_s=0.12,
                    destination="cloud",
                    start=0.1 * horizon,
                    end=0.9 * horizon,
                )
            ],
            losses=[LinkLoss(probability=0.08, destination="cloud")],
            seed=0,
        ),
        "worker-crash": ChaosSchedule(
            crashes=[
                WorkerCrash(
                    tier="cloud", start=0.3 * horizon, end=0.3 * horizon + 2.0 * slo_s
                )
            ],
            seed=0,
        ),
        "cloud-partition": ChaosSchedule(
            outages=[
                LinkOutage(
                    destination="cloud", start=0.2 * horizon, end=0.8 * horizon
                )
            ],
            seed=0,
        ),
    }
    modes = ("no-slo", "deadline", "deadline+hedge")

    print(
        f"\nServing {num_requests} requests at {rate:.0f} req/s "
        f"(~{horizon:.2f} s horizon); budget {1e3 * slo_s:.0f} ms, hedge "
        f"trigger at {hedge.trigger_fraction:.0%} of remaining budget.\n"
    )
    header = (
        f"{'scenario':<16} {'mode':<15} {'p99 ms':>8} {'hit %':>6} "
        f"{'expired':>8} {'degraded':>9} {'hedges':>7} {'wins':>5}  notes"
    )
    print(header)
    print("-" * len(header))
    for name, schedule in scenarios.items():
        for mode in modes:
            plan = PartitionPlan(
                model,
                replicas=2,
                slo_s=slo_s if mode != "no-slo" else None,
                hedge=hedge if mode == "deadline+hedge" else None,
            )
            balancer = LoadBalancer.from_plan(
                plan,
                threshold,
                strategy="round-robin",
                batching=batching,
                service_models=[service] * plan.num_tiers,
                offload=policy,
                breaker=breaker,
                edf=mode != "no-slo",
            )
            origin = balancer.replicas[0]
            origin.attach_chaos(schedule)
            arrivals = PoissonProcess(rate_rps=rate, seed=1)
            for count, when in zip(range(num_requests), arrivals):
                index = count % len(test_set.images)
                origin.submit(
                    test_set.images[index],
                    target=int(test_set.labels[index]),
                    at=when,
                )
            balancer.run_until_idle(drain=True)
            report = balancer.report(duration_s=origin.clock.now)
            assert report.served == num_requests, "a request was dropped"
            resilience = report.metadata["resilience"]
            assert resilience["expired_compute"] == 0
            hit = sum(
                1
                for r in report.responses
                if not r.deadline_exceeded and r.latency_s < slo_s
            )
            notes = (
                f"retries={report.retry_total} "
                f"clipped={resilience['clipped_retries']} "
                f"hedge_kb={report.hedge_bytes / 1e3:.1f}"
            )
            print(
                f"{name:<16} {mode:<15} {1e3 * report.p99_latency_s:>8.2f} "
                f"{100.0 * hit / report.served:>6.1f} "
                f"{100.0 * report.deadline_exceeded_fraction:>7.1f}% "
                f"{100.0 * report.degraded_fraction:>8.1f}% "
                f"{report.hedge_total:>7} {resilience['hedge_wins']:>5}  {notes}"
            )

    print(
        "\nDeadlines cap the blackout tail near the budget (expired work is"
        "\nretired before burning compute); hedging escapes dark links to the"
        "\nsibling replica before the retry ladder even starts."
    )


if __name__ == "__main__":
    main()
