"""Print the multi-view multi-camera dataset statistics (paper Figure 6).

Shows, for each device, how many samples of each class appear in its frames
and how often the object is not visible at all — the imbalance that drives
the wide spread of individual device accuracies in the paper.

Run with::

    python examples/dataset_statistics.py [--train-samples 680]
"""

from __future__ import annotations

import argparse

from repro.datasets import CLASS_NAMES, class_distribution_per_device, load_mvmc_splits


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=680)
    parser.add_argument("--test-samples", type=int, default=171)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )
    print(f"Train samples: {len(train_set)}   Test samples: {len(test_set)}")
    print(f"Classes: {', '.join(CLASS_NAMES)}\n")

    distribution = class_distribution_per_device(train_set)
    header = f"{'device':>8} | " + " | ".join(f"{name:>7}" for name in CLASS_NAMES) + " | not-present"
    print(header)
    print("-" * len(header))
    for device_index in range(train_set.num_devices):
        counts = " | ".join(f"{distribution[name][device_index]:7d}" for name in CLASS_NAMES)
        print(f"{train_set.profiles[device_index].name:>8} | {counts} | "
              f"{distribution['not-present'][device_index]:11d}")

    presence = train_set.presence().sum(axis=0)
    print("\nVisibility per device (objects in frame):")
    for device_index, count in enumerate(presence):
        bar = "#" * int(40 * count / len(train_set))
        print(f"  {train_set.profiles[device_index].name:>9}: {count:4d} {bar}")


if __name__ == "__main__":
    main()
