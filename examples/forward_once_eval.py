"""Forward-once evaluation: the ExitOracle logit cache end to end.

Demonstrates :class:`repro.core.oracle.ExitOracle`:

1. train a small DDNN;
2. capture the per-exit logits/entropies in ONE compiled forward pass;
3. replay staged routing from the cache and verify it is byte-identical
   to :class:`~repro.core.inference.StagedInferenceEngine`;
4. sweep a whole threshold grid (Table II style) in vectorized numpy and
   time it against the per-threshold eager loop it replaces; and
5. calibrate an exit-rate target with an exact entropy-CDF quantile
   lookup instead of a grid search.

Run with::

    python examples/forward_once_eval.py [--epochs 12] [--target-exit-rate 0.75]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import (
    DDNNConfig,
    DDNNTrainer,
    ExitOracle,
    StagedInferenceEngine,
    TrainingConfig,
    build_ddnn,
    threshold_for_exit_rate,
)
from repro.datasets import load_mvmc_splits

TABLE2_GRID = (0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=160)
    parser.add_argument("--test-samples", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--target-exit-rate", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )
    config = DDNNConfig(num_devices=train_set.num_devices, device_filters=4, seed=args.seed)
    model = build_ddnn(config)
    print(f"training ({args.epochs} epochs) ...")
    DDNNTrainer(model, TrainingConfig(epochs=args.epochs, seed=args.seed)).fit(train_set)

    # -- 1 forward pass, every answer ---------------------------------- #
    start = time.perf_counter()
    oracle = ExitOracle.capture(model, test_set)  # compiled by default
    capture_s = time.perf_counter() - start
    print(f"\ncaptured {oracle.num_samples} samples x {oracle.num_exits} exits "
          f"in one compiled forward ({capture_s * 1e3:.1f} ms)")

    # -- byte-identical replay ------------------------------------------ #
    engine = StagedInferenceEngine(model, 0.8, compile=True)
    eager = engine.run(test_set)
    cached = oracle.route(0.8)
    assert np.array_equal(eager.predictions, cached.predictions)
    assert np.array_equal(eager.exit_indices, cached.exit_indices)
    assert np.array_equal(eager.entropies, cached.entropies)
    print("route(0.8) byte-identical to StagedInferenceEngine.run: OK")

    # -- whole grid, zero extra forwards -------------------------------- #
    start = time.perf_counter()
    table = oracle.sweep(TABLE2_GRID)
    sweep_s = time.perf_counter() - start
    start = time.perf_counter()
    for threshold in TABLE2_GRID:
        StagedInferenceEngine(model, float(threshold)).run(test_set)
    eager_s = time.perf_counter() - start
    print(f"\nTable II grid ({len(TABLE2_GRID)} thresholds):")
    print("  T      local%   overall%   bytes/sample")
    for point in table.points():
        print(f"  {point.threshold:.2f}   {100 * point.local_exit_fraction:6.2f}   "
              f"{100 * point.overall_accuracy:7.2f}   {point.communication_bytes:10.1f}")
    print(f"  oracle sweep {sweep_s * 1e3:.1f} ms vs eager loop {eager_s * 1e3:.1f} ms "
          f"({eager_s / max(sweep_s, 1e-9):.0f}x)")

    # -- exact exit-rate calibration ------------------------------------ #
    exact = oracle.quantile_threshold(args.target_exit_rate)
    achieved = float(oracle.exit_rate_cdf(exact)[0])
    grid_best = threshold_for_exit_rate(
        model, test_set, args.target_exit_rate, oracle=oracle
    ).best_threshold
    print(f"\nexit-rate calibration (target {args.target_exit_rate:.0%}):")
    print(f"  exact quantile threshold {exact:.4f} -> local exit rate {achieved:.1%}")
    print(f"  best grid threshold      {grid_best:.4f}")


if __name__ == "__main__":
    main()
