"""Quickstart: train a small DDNN and run threshold-based distributed inference.

This is the five-minute tour of the library:

1. generate a synthetic multi-view multi-camera dataset (6 cameras, 3 classes);
2. build the paper's evaluation architecture (binary ConvP/FC device blocks,
   MP local aggregation, CC cloud aggregation);
3. jointly train all exits with the weighted multi-exit loss;
4. run staged inference with a normalized-entropy threshold and report the
   accuracy / communication trade-off.

Run with::

    python examples/quickstart.py [--epochs 30] [--train-samples 300]
"""

from __future__ import annotations

import argparse

from repro.core import (
    DDNNConfig,
    DDNNTrainer,
    StagedInferenceEngine,
    TrainingConfig,
    build_ddnn,
    evaluate_exit_accuracies,
)
from repro.datasets import load_mvmc_splits


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=240)
    parser.add_argument("--test-samples", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--device-filters", type=int, default=4)
    parser.add_argument("--threshold", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("Generating the synthetic multi-view multi-camera dataset ...")
    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )
    print(f"  train: {len(train_set)} samples, test: {len(test_set)} samples, "
          f"{train_set.num_devices} devices")

    config = DDNNConfig(
        num_devices=train_set.num_devices,
        device_filters=args.device_filters,
        cloud_filters=16,
        cloud_hidden_units=64,
        local_aggregation="MP",
        cloud_aggregation="CC",
        seed=args.seed,
    )
    model = build_ddnn(config)
    print(f"Built DDNN: {model.summary()}")
    print(f"  per-device memory: {max(model.device_memory_bytes()):.1f} B (< 2 KB)")

    print(f"Jointly training all exits for {args.epochs} epochs ...")
    trainer = DDNNTrainer(
        model, TrainingConfig(epochs=args.epochs, batch_size=32, verbose=True, log_every=5)
    )
    trainer.fit(train_set)

    accuracies = evaluate_exit_accuracies(model, test_set)
    print("\nExit accuracies (100% of samples classified at each exit):")
    for name, value in accuracies.items():
        print(f"  {name:>6}: {100 * value:.1f}%")

    engine = StagedInferenceEngine(model, args.threshold)
    result = engine.run(test_set)
    print(f"\nStaged inference with T = {args.threshold}:")
    print(f"  overall accuracy:     {100 * result.overall_accuracy(test_set.labels):.1f}%")
    print(f"  exited locally:       {100 * result.local_exit_fraction:.1f}%")
    print(f"  comm. per device:     {engine.communication_bytes(result):.1f} B/sample")
    print(f"  raw offload baseline: 3072 B/sample "
          f"({engine.communication_reduction(result):.1f}x reduction)")


if __name__ == "__main__":
    main()
