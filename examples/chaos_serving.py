"""Chaos-ready serving: fault injection, deadlines, retries and failover.

The paper's fault-tolerance study (Fig. 10) removes devices *before* the
run; this example injects faults *during* one.  A small trained DDNN
serves the same Poisson request stream four times:

1. ``none`` — fault-free baseline (the resilient offload path is armed but
   never triggered, and matches the legacy path event for event);
2. ``flaky-uplink`` — the device→cloud link flaps and drops messages;
   offloads carry a deadline, time out, and retry with exponential
   backoff + jitter, bridging the short dark windows;
3. ``cloud-partition`` — the cloud is unreachable for most of the run;
   after the retry budget (or a circuit-breaker fast-fail) each offload
   *fails over* to the device tier's own exit, answered honestly with
   ``degraded=True`` and its retry count;
4. ``worker-crash`` — every cloud worker crashes for a window and
   restarts; links stay up, so nothing degrades — the backlog just drains
   late.

Every scenario answers every request exactly once, and on the simulated
clock the whole fault realisation is deterministic under the schedule's
seed.

Run with::

    PYTHONPATH=src python examples/chaos_serving.py
"""

from __future__ import annotations

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.hierarchy import (
    ChaosSchedule,
    LinkFlap,
    LinkLoss,
    LinkOutage,
    PartitionPlan,
    WorkerCrash,
)
from repro.serving import (
    BatchingPolicy,
    CircuitBreaker,
    DistributedServingFabric,
    PoissonProcess,
    RetryPolicy,
    ServiceModel,
)


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)

    threshold = 0.8
    num_requests = 120
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
    rate = 0.5 * service.capacity_rps(4)
    horizon = num_requests / rate
    batching = BatchingPolicy(max_batch_size=4, max_wait_s=0.004)
    policy = RetryPolicy(
        deadline_s=0.1,
        max_retries=2,
        backoff_base_s=0.05,
        backoff_multiplier=2.0,
        backoff_max_s=0.2,
        jitter_s=0.01,
        seed=0,
    )
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=0.25)
    plan = PartitionPlan(model)

    scenarios = {
        "none": None,
        "flaky-uplink": ChaosSchedule(
            flaps=[
                LinkFlap(
                    period_s=horizon / 4.0,
                    down_s=0.12,
                    destination="cloud",
                    start=0.1 * horizon,
                    end=0.9 * horizon,
                )
            ],
            losses=[LinkLoss(probability=0.08, destination="cloud")],
            seed=0,
        ),
        "cloud-partition": ChaosSchedule(
            outages=[
                LinkOutage(
                    destination="cloud", start=0.2 * horizon, end=0.8 * horizon
                )
            ],
            seed=0,
        ),
        "worker-crash": ChaosSchedule(
            crashes=[
                WorkerCrash(tier="cloud", start=0.3 * horizon, end=0.6 * horizon)
            ],
            seed=0,
        ),
    }

    print(
        f"\nServing {num_requests} requests at {rate:.0f} req/s "
        f"(~{horizon:.2f} s horizon) under four fault scenarios; "
        f"offload deadline {1e3 * policy.deadline_s:.0f} ms, "
        f"{policy.max_retries} retries, breaker trips after "
        f"{breaker.failure_threshold} failures.\n"
    )
    header = (
        f"{'scenario':<16} {'served':>6} {'degraded':>9} {'retries':>8} "
        f"{'p95 ms':>8} {'accuracy':>9}  notes"
    )
    print(header)
    print("-" * len(header))
    for name, schedule in scenarios.items():
        fabric = DistributedServingFabric.from_plan(
            plan,
            threshold,
            batching=batching,
            service_models=[service] * plan.num_tiers,
            offload=policy,
            breaker=breaker,
        )
        if schedule is not None:
            fabric.attach_chaos(schedule)
        report = fabric.open_loop(
            PoissonProcess(rate_rps=rate, seed=1),
            test_set.images,
            targets=[int(label) for label in test_set.labels],
            num_requests=num_requests,
        )
        assert report.served == num_requests, "a request was dropped"
        stats = fabric.resilience_stats
        notes = (
            f"timeouts={stats.timeouts} fast_fails={stats.breaker_fast_fails} "
            f"lost={fabric.deployment.fabric.lost_messages}"
        )
        print(
            f"{name:<16} {report.served:>6} "
            f"{100.0 * report.degraded_fraction:>8.1f}% {report.retry_total:>8} "
            f"{1e3 * report.p95_latency_s:>8.2f} {report.accuracy:>9.3f}  {notes}"
        )

    print(
        "\nEvery scenario answered every request exactly once; degraded rows"
        "\nare failovers to the device tier's own exit, honestly labelled."
    )


if __name__ == "__main__":
    main()
