"""Tier-aware distributed serving: workers, link delays, adaptive shedding.

The earlier serving examples run everything at one tier.  This one serves
an open-loop request stream over the paper's *distributed* deployment —
device tier, (optional) edge, cloud — connected by bandwidth/latency
modelled links, using :class:`~repro.serving.fabric.DistributedServingFabric`:

1. train a small multi-exit DDNN on the synthetic MVMC dataset;
2. partition it onto simulated nodes and links (:func:`partition_ddnn`);
3. drive the fabric with Poisson arrivals at 1.5x one device-tier worker's
   capacity and watch p95 collapse as workers are added — exit decisions
   stay byte-identical, only the queueing changes;
4. choke the uplink bandwidth and watch transfer delay surface in the
   offloaded requests' latency;
5. enable adaptive shedding (raise the local-exit threshold under queue
   pressure) and compare the accuracy/latency trade against dropping or
   unbounded queueing.

Run with::

    PYTHONPATH=src python examples/distributed_serving.py
"""

from __future__ import annotations

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.hierarchy import DEFAULT_UPLINK, LinkSpec, partition_ddnn
from repro.serving import (
    AdaptiveThreshold,
    BatchingPolicy,
    DistributedServingFabric,
    PoissonProcess,
    ServiceModel,
)


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)
    model.eval()

    batching = BatchingPolicy(max_batch_size=8, max_wait_s=0.005)
    device_service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.001)
    upper_service = ServiceModel(batch_overhead_s=0.001, per_sample_s=0.0005)
    offered_rps = 1.5 * device_service.capacity_rps(batching.max_batch_size)
    print(f"\nOpen-loop Poisson arrivals at {offered_rps:.0f} rps "
          "(1.5x one device-tier worker)\n")

    def run(workers=1, uplink=DEFAULT_UPLINK, adaptive=None):
        fabric = DistributedServingFabric(
            partition_ddnn(model, uplink=uplink),
            thresholds=0.8,
            workers_per_tier=workers,
            batching=batching,
            service_models=[device_service, upper_service],
            adaptive=adaptive,
        )
        return fabric.open_loop(
            PoissonProcess(offered_rps, seed=0),
            test_set.images,
            targets=test_set.labels,
            num_requests=180,
        )

    print(f"{'config':<34}{'offload%':>9}{'p50 ms':>9}{'p95 ms':>9}{'acc%':>7}")
    for workers in (1, 2, 4):
        report = run(workers=workers)
        print(
            f"{'workers=' + str(workers):<34}{100 * report.offload_fraction:>9.1f}"
            f"{1e3 * report.p50_latency_s:>9.1f}{1e3 * report.p95_latency_s:>9.1f}"
            f"{100 * report.accuracy:>7.1f}"
        )

    slow_uplink = LinkSpec(
        bandwidth_bytes_per_s=DEFAULT_UPLINK.bandwidth_bytes_per_s / 4,
        latency_s=DEFAULT_UPLINK.latency_s,
    )
    report = run(workers=2, uplink=slow_uplink)
    print(
        f"{'workers=2, uplink/4':<34}{100 * report.offload_fraction:>9.1f}"
        f"{1e3 * report.p50_latency_s:>9.1f}{1e3 * report.p95_latency_s:>9.1f}"
        f"{100 * report.accuracy:>7.1f}"
    )

    adaptive = AdaptiveThreshold(depth_trigger=2 * batching.max_batch_size)
    report = run(workers=1, adaptive=adaptive)
    print(
        f"{'workers=1, adaptive shed':<34}{100 * report.offload_fraction:>9.1f}"
        f"{1e3 * report.p50_latency_s:>9.1f}{1e3 * report.p95_latency_s:>9.1f}"
        f"{100 * report.accuracy:>7.1f}"
        f"   ({100 * report.relaxed_fraction:.0f}% answered under a relaxed threshold)"
    )
    print(
        "\nSame decisions at every worker count; the adaptive row trades a"
        "\nlittle accuracy for a bounded tail on the saturated single worker."
    )


if __name__ == "__main__":
    main()
