"""Overload-safe DDNN serving: open-loop load, admission control, QoS.

Where ``examples/online_serving.py`` shows the happy path (a drainable
request stream), this example shows the regime the paper's always-on end
devices actually live in — arrivals that do not care whether the server
keeps up:

1. train a small multi-exit DDNN on the synthetic MVMC dataset;
2. drive a :class:`~repro.serving.server.DDNNServer` with a seeded Poisson
   arrival process at 2x its serving capacity, on a simulated clock with a
   deterministic service-time model (latencies are exactly reproducible);
3. compare the unbounded FIFO baseline against a bounded queue under each
   admission policy (reject / drop-oldest / shed-to-local-exit);
4. give one client a 3x QoS weight and show it gets the larger share of a
   contended micro-batch.

Run with::

    PYTHONPATH=src python examples/overload_serving.py
"""

from __future__ import annotations

from repro.core import DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits
from repro.serving import (
    BatchingPolicy,
    DDNNServer,
    LoadGenerator,
    PoissonProcess,
    ServiceModel,
    SimulatedClock,
    admission_policy,
)


def main() -> None:
    num_devices = 4
    profiles = DEFAULT_DEVICE_PROFILES[:num_devices]
    train_set, test_set = load_mvmc_splits(
        train_samples=160, test_samples=60, profiles=profiles, seed=7
    )

    print("Training a small DDNN (4 devices)...")
    model = build_ddnn(
        num_devices=num_devices,
        device_filters=4,
        cloud_filters=8,
        cloud_conv_blocks=2,
        cloud_hidden_units=32,
        seed=1,
    )
    DDNNTrainer(model, TrainingConfig(epochs=10, batch_size=32, seed=0)).fit(train_set)
    model.eval()

    batching = BatchingPolicy(max_batch_size=16, max_wait_s=0.005)
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.001)
    capacity_rps = service.capacity_rps(batching.max_batch_size)
    offered_rps = 2.0 * capacity_rps
    print(
        f"\nServing capacity ~{capacity_rps:.0f} rps; "
        f"offering a Poisson stream at {offered_rps:.0f} rps (2x overload)"
    )

    print(f"\n{'policy':<12} {'served':>6} {'rej':>5} {'drop':>5} {'shed':>5} "
          f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}")
    for policy_name in ("unbounded", "reject", "drop-oldest", "shed-local"):
        clock = SimulatedClock()
        server = DDNNServer(
            model,
            thresholds=0.8,
            policy=batching,
            clock=clock,
            capacity=None if policy_name == "unbounded" else 32,
            admission=None if policy_name == "unbounded" else admission_policy(policy_name),
        )
        generator = LoadGenerator(
            server,
            PoissonProcess(offered_rps, seed=42),
            test_set.images,
            targets=test_set.labels,
            service_model=service,
        )
        report = generator.run(500)
        print(
            f"{policy_name:<12} {report.served:>6} {report.rejected:>5} "
            f"{report.dropped:>5} {report.shed:>5} "
            f"{1e3 * report.p50_latency_s:>8.1f} {1e3 * report.p95_latency_s:>8.1f} "
            f"{1e3 * report.p99_latency_s:>8.1f}"
        )
    print("(unbounded keeps everything but its tail grows with run length; "
          "bounded policies pin the tail and surface the excess explicitly)")

    # ------------------------------------------------------------------ #
    print("\nPer-client QoS: 'premium' weight 3.0 vs 'basic' weight 1.0")
    clock = SimulatedClock()
    server = DDNNServer(
        model,
        thresholds=0.8,
        policy=batching,
        clock=clock,
        client_weights={"premium": 3.0, "basic": 1.0},
    )
    for index in range(12):
        server.submit(test_set.images[index], client_id="premium")
        server.submit(test_set.images[index], client_id="basic")
    batch = server.batcher.next_batch(force=True)
    batch_clients = [request.client_id for request in batch]
    print(f"  first contended micro-batch ({len(batch_clients)} slots): "
          f"premium={batch_clients.count('premium')}, basic={batch_clients.count('basic')}")
    server.process_batch(batch)
    server.run_until_drained()
    for client_id, session in sorted(server.queue.sessions.items()):
        print(f"  {client_id:<8} weight={session.weight:.1f} "
              f"submitted={session.submitted} completed={session.completed}")


if __name__ == "__main__":
    main()
