"""Compiled inference fast path: fused/folded forward plans for serving.

Demonstrates the :mod:`repro.compile` inference-plan compiler end to end:

1. train a small DDNN;
2. compile it (BatchNorm folding, conv/activation fusion, pre-packed
   binarized weights, a buffer arena reused across batches);
3. verify the numerical-equivalence guarantee against the eager path;
4. time eager vs compiled staged inference at serving batch sizes; and
5. serve the same traffic through ``DDNNServer(compile=True)``.

Run with::

    python examples/compiled_inference.py [--epochs 12] [--threshold 0.8]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.compile import compile_ddnn, verify_compiled
from repro.core import DDNNConfig, DDNNTrainer, StagedInferenceEngine, TrainingConfig, build_ddnn
from repro.datasets import load_mvmc_splits
from repro.serving import BatchingPolicy, DDNNServer


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=160)
    parser.add_argument("--test-samples", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--threshold", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )
    config = DDNNConfig(num_devices=train_set.num_devices, seed=args.seed)
    model = build_ddnn(config)
    print(f"Training a {config.scheme} DDNN for {args.epochs} epochs ...")
    DDNNTrainer(model, TrainingConfig(epochs=args.epochs, batch_size=32)).fit(train_set)

    print("Compiling the model into fused inference plans ...")
    compiled = compile_ddnn(model)
    diff = verify_compiled(model, compiled, test_set.images[:32])
    print(f"  equivalence check: max |logit diff| = {diff:.2e} (allclose at fp32 tolerance)")

    # -- eager vs compiled staged inference ------------------------------- #
    for batch_size in (1, 8, 64):
        timings = {}
        results = {}
        for compile_flag in (False, True):
            engine = StagedInferenceEngine(
                model, args.threshold, batch_size=batch_size, compile=compile_flag
            )
            engine.run(test_set)  # warm the plan/buffers
            started = time.perf_counter()
            results[compile_flag] = engine.run(test_set)
            timings[compile_flag] = time.perf_counter() - started
        assert np.array_equal(results[False].predictions, results[True].predictions)
        assert np.array_equal(results[False].exit_indices, results[True].exit_indices)
        print(
            f"  batch {batch_size:>2}: eager {1e3 * timings[False]:6.1f} ms, "
            f"compiled {1e3 * timings[True]:6.1f} ms "
            f"({timings[False] / timings[True]:.1f}x, identical routing)"
        )

    # -- compiled online serving ------------------------------------------ #
    server = DDNNServer(
        model,
        args.threshold,
        policy=BatchingPolicy(max_batch_size=32, max_wait_s=0.0),
        compile=True,
    )
    started = time.perf_counter()
    responses = server.serve_dataset(test_set)
    wall = time.perf_counter() - started
    snapshot = server.snapshot()
    correct = sum(response.prediction == response.target for response in responses)
    print(f"\nDDNNServer(compile=True) served {len(responses)} requests in {wall:.3f} s")
    print(f"  throughput: {len(responses) / wall:.0f} req/s, "
          f"local exits: {100 * snapshot.exit_fractions.get('local', 0.0):.1f}%, "
          f"accuracy: {100 * correct / len(responses):.1f}%")


if __name__ == "__main__":
    main()
