"""Three-tier deployment: devices, an edge gateway and the cloud (Fig. 2 (e)).

The paper's evaluation uses the device+cloud configuration; this example
demonstrates the vertical-scaling story with an explicit edge tier:

* each camera runs its binary ConvP/FC section locally;
* the local aggregator may exit easy samples immediately;
* harder samples are forwarded to the *edge*, which runs further binary
  layers and may exit;
* only the hardest samples reach the cloud.

The example trains the three-exit DDNN jointly, partitions it onto the
simulated hierarchy and reports per-tier exit rates, latency and bytes.

Run with::

    python examples/edge_hierarchy_deployment.py [--epochs 25]
"""

from __future__ import annotations

import argparse

from repro.core import (
    DDNNConfig,
    DDNNTopology,
    DDNNTrainer,
    StagedInferenceEngine,
    TrainingConfig,
    build_ddnn,
    evaluate_exit_accuracies,
)
from repro.datasets import load_mvmc_splits
from repro.hierarchy import HierarchyRuntime, partition_ddnn


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-samples", type=int, default=240)
    parser.add_argument("--test-samples", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--local-threshold", type=float, default=0.7)
    parser.add_argument("--edge-threshold", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    train_set, test_set = load_mvmc_splits(
        train_samples=args.train_samples, test_samples=args.test_samples, seed=args.seed
    )

    config = DDNNConfig(
        num_devices=train_set.num_devices,
        device_filters=4,
        edge_filters=8,
        cloud_filters=16,
        cloud_hidden_units=64,
        topology=DDNNTopology.from_name("devices_edge_cloud"),
        seed=args.seed,
    )
    model = build_ddnn(config)
    print(f"Built three-exit DDNN: exits = {model.exit_names}")

    print(f"Training for {args.epochs} epochs ...")
    DDNNTrainer(model, TrainingConfig(epochs=args.epochs, batch_size=32)).fit(train_set)

    accuracies = evaluate_exit_accuracies(model, test_set)
    print("\nExit accuracies (100% of samples at each exit):")
    for name, value in accuracies.items():
        print(f"  {name:>6}: {100 * value:.1f}%")

    thresholds = [args.local_threshold, args.edge_threshold]
    staged = StagedInferenceEngine(model, thresholds).run(test_set)
    print(f"\nStaged inference with T_local={args.local_threshold}, T_edge={args.edge_threshold}:")
    print(f"  overall accuracy : {100 * staged.overall_accuracy(test_set.labels):.1f}%")
    for name in model.exit_names:
        print(f"  exited at {name:>6}: {100 * staged.exit_fraction(name):.1f}%")

    print("\nRunning the same inference over the simulated hierarchy ...")
    deployment = partition_ddnn(model)
    runtime = HierarchyRuntime(deployment, thresholds)
    distributed = runtime.run(test_set)
    summary = distributed.telemetry.summary()
    print(f"  accuracy          : {100 * summary.accuracy:.1f}%")
    print(f"  mean latency      : {1e3 * summary.mean_latency_s:.2f} ms "
          f"(p95 {1e3 * summary.p95_latency_s:.2f} ms)")
    print(f"  bytes per sample  : {summary.mean_bytes_per_sample:.1f} B (all devices combined)")
    print("  bytes by uplink   :")
    for link in deployment.fabric.links():
        if link.stats.bytes_transferred:
            print(f"    {link.source:>9} -> {link.destination:<9}: "
                  f"{link.stats.bytes_transferred:10.0f} B over {link.stats.messages} messages")


if __name__ == "__main__":
    main()
