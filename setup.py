"""Setup shim so that ``pip install -e .`` works without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables the
legacy editable-install path (``setup.py develop``) used in offline
environments where PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()
